"""Benchmark for the parallel-serving tier: TP sweeps, replica scaling and
router A/B curves.

Extends the Table 4 throughput trajectory past one GPU: ``test_tp_sweep``
shows previously-OOM model/GPU pairs becoming servable at tp>=2,
``test_replica_scaling`` the cluster throughput curve over 1/2/4 replicas,
and ``test_router_ab`` the p95-TTFT gap between load-blind round-robin and
the queue-aware routers on bursty, heavy-tailed traffic.
"""

from repro.gpu import A100
from repro.model import get_config
from repro.serving import (
    ClusterEngine,
    SCHEDULING_PRESETS,
    SYSTEM_PRESETS,
    make_router_study_workload,
    tp_sweep,
)


def _cluster(num_replicas: int) -> ClusterEngine:
    return ClusterEngine(get_config("llama-2-7b"), A100,
                         SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                         num_replicas=num_replicas, max_seq_len=4096)


def test_tp_sweep(benchmark):
    """70B FP16 on A100: OOM at tp=1, servable from tp=2 up."""
    cfg = get_config("llama-2-70b")
    results = benchmark.pedantic(
        tp_sweep, args=(cfg, A100, SYSTEM_PRESETS["trt-fp16"]),
        kwargs={"tp_degrees": (1, 2, 4, 8)}, rounds=1, iterations=1)
    print()
    for r in results:
        batch = r.batch if r.batch else "OOM"
        print(f"tp={r.tp_degree}: batch {batch}, {r.tokens_per_second:8.1f} tok/s")
    by_tp = {r.tp_degree: r for r in results}
    assert by_tp[1].batch == 0                       # Table 4's OOM entry
    assert by_tp[2].tokens_per_second > 0            # servable once sharded
    assert by_tp[4].tokens_per_second > by_tp[2].tokens_per_second


def test_replica_scaling(benchmark, serving_json):
    """Cluster throughput grows with replica count on bursty traffic."""
    workload = make_router_study_workload()

    def run():
        return {n: _cluster(n).serve(workload.copy_fresh(),
                                     router="least-outstanding", max_num_seqs=6,
                                     scheduling=SCHEDULING_PRESETS["chunked"])
                for n in (1, 2, 4)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    serving_json.record("replica_scaling", results)
    print()
    for n, result in results.items():
        m = result.metrics
        print(f"{n} replica(s): {result.generation_throughput:7.1f} tok/s  "
              f"TTFT p50/p95 {m.ttft.p50 * 1e3:7.1f}/{m.ttft.p95 * 1e3:8.1f} ms")
    assert all(r.num_unserved == 0 for r in results.values())
    assert results[4].metrics.ttft.p95 < results[1].metrics.ttft.p95
    assert results[4].generation_throughput > results[1].generation_throughput


def test_router_ab(benchmark, serving_json):
    """Queue-aware routing beats round-robin on p95 TTFT under bursts."""
    workload = make_router_study_workload()
    cluster = _cluster(4)

    def run():
        return {router: cluster.serve(workload.copy_fresh(), router=router,
                                      max_num_seqs=6,
                                      scheduling=SCHEDULING_PRESETS["chunked"])
                for router in ("round-robin", "least-outstanding",
                               "shortest-queue")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    serving_json.record("router_ab", results)
    print()
    for router, result in results.items():
        m = result.metrics
        print(f"{router:18s} {result.generation_throughput:7.1f} tok/s  "
              f"TTFT p50/p95 {m.ttft.p50 * 1e3:7.1f}/{m.ttft.p95 * 1e3:8.1f} ms  "
              f"split {result.requests_per_replica}")
    rr = results["round-robin"].metrics.ttft.p95
    lor = results["least-outstanding"].metrics.ttft.p95
    assert lor < rr
