"""Model architecture configurations.

``ModelConfig`` carries the geometry of a Llama-family transformer.  The
registry contains:

* the eight models evaluated in the paper (Table 4 / Figure 15) with their
  published architecture hyper-parameters — these are used by the GPU cost
  model and the serving simulator, which only need geometry, never weights;
* ``tiny`` / ``small`` presets that are small enough to run full forward
  passes on CPU for the accuracy experiments (Table 2 / 3 / 5, Figure 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["ModelConfig", "MODEL_REGISTRY", "get_config", "register_config"]


@dataclass(frozen=True)
class ModelConfig:
    """Geometry of a causal Llama-style transformer.

    Attributes mirror the HuggingFace config fields of the corresponding
    models.  ``num_kv_heads < num_heads`` selects grouped-query attention.
    """

    name: str
    hidden_size: int
    intermediate_size: int
    num_layers: int
    num_heads: int
    num_kv_heads: int
    vocab_size: int
    max_seq_len: int = 4096
    norm_eps: float = 1e-5
    rope_theta: float = 10000.0
    tie_embeddings: bool = False
    # Mixture-of-experts models (Mixtral) route each token to ``top_k`` of
    # ``num_experts`` FFN experts; dense models use (1, 1).
    num_experts: int = 1
    experts_per_token: int = 1

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")
        if self.num_heads % self.num_kv_heads != 0:
            raise ValueError("num_heads must be divisible by num_kv_heads")

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def gqa_ratio(self) -> int:
        """Number of query heads sharing one KV head (``r`` in the paper)."""
        return self.num_heads // self.num_kv_heads

    @property
    def kv_dim(self) -> int:
        return self.num_kv_heads * self.head_dim

    # ------------------------------------------------------------------
    # Parameter / memory accounting (used by the serving simulator).
    # ------------------------------------------------------------------
    def attention_params(self) -> int:
        """Parameters of one attention block (QKV + output projections)."""
        q = self.hidden_size * self.hidden_size
        kv = 2 * self.hidden_size * self.kv_dim
        o = self.hidden_size * self.hidden_size
        return q + kv + o

    def ffn_params(self) -> int:
        """Parameters of one (Swi)GLU FFN: gate, up and down projections."""
        dense = 3 * self.hidden_size * self.intermediate_size
        return dense * self.num_experts

    def num_params(self, include_embeddings: bool = True) -> int:
        """Total parameter count."""
        per_layer = self.attention_params() + self.ffn_params()
        params = per_layer * self.num_layers
        if include_embeddings:
            emb = self.vocab_size * self.hidden_size
            params += emb if self.tie_embeddings else 2 * emb
        return params

    def weight_bytes(self, weight_bits: float) -> int:
        """Weight memory footprint at ``weight_bits`` bits per parameter.

        Embeddings and the LM head are kept in 16 bits by every system
        compared in the paper, so only transformer-block parameters are
        scaled by ``weight_bits``.
        """
        block_params = (self.attention_params() + self.ffn_params()) * self.num_layers
        emb_params = self.num_params() - block_params
        return int(block_params * weight_bits / 8 + emb_params * 2)

    def kv_bytes_per_token(self, kv_bits: float) -> float:
        """KV-cache bytes required per token across all layers (K and V)."""
        elems = 2 * self.num_layers * self.kv_dim
        payload = elems * kv_bits / 8.0
        if kv_bits < 16:
            # Per-head dynamic quantization stores one FP16 scale and one FP16
            # zero point per head per token for both K and V.
            payload += 2 * self.num_layers * self.num_kv_heads * 2 * 2
        return payload


MODEL_REGISTRY: Dict[str, ModelConfig] = {}


def register_config(config: ModelConfig) -> ModelConfig:
    """Add ``config`` to the global registry (overwrites by name)."""
    MODEL_REGISTRY[config.name] = config
    return config


def get_config(name: str) -> ModelConfig:
    """Look up a registered configuration by name."""
    try:
        return MODEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None


# ----------------------------------------------------------------------
# Paper models (geometry only — used by the cost model / serving simulator).
# ----------------------------------------------------------------------
register_config(ModelConfig(
    name="llama-3-8b", hidden_size=4096, intermediate_size=14336, num_layers=32,
    num_heads=32, num_kv_heads=8, vocab_size=128256, max_seq_len=8192,
    rope_theta=500000.0,
))
register_config(ModelConfig(
    name="llama-2-7b", hidden_size=4096, intermediate_size=11008, num_layers=32,
    num_heads=32, num_kv_heads=32, vocab_size=32000,
))
register_config(ModelConfig(
    name="llama-2-13b", hidden_size=5120, intermediate_size=13824, num_layers=40,
    num_heads=40, num_kv_heads=40, vocab_size=32000,
))
register_config(ModelConfig(
    name="llama-30b", hidden_size=6656, intermediate_size=17920, num_layers=60,
    num_heads=52, num_kv_heads=52, vocab_size=32000, max_seq_len=2048,
))
register_config(ModelConfig(
    name="llama-2-70b", hidden_size=8192, intermediate_size=28672, num_layers=80,
    num_heads=64, num_kv_heads=8, vocab_size=32000,
))
register_config(ModelConfig(
    name="mistral-7b", hidden_size=4096, intermediate_size=14336, num_layers=32,
    num_heads=32, num_kv_heads=8, vocab_size=32000, max_seq_len=8192,
))
register_config(ModelConfig(
    name="mixtral-8x7b", hidden_size=4096, intermediate_size=14336, num_layers=32,
    num_heads=32, num_kv_heads=8, vocab_size=32000, max_seq_len=8192,
    num_experts=8, experts_per_token=2,
))
register_config(ModelConfig(
    name="yi-34b", hidden_size=7168, intermediate_size=20480, num_layers=60,
    num_heads=56, num_kv_heads=8, vocab_size=64000,
))
register_config(ModelConfig(
    name="qwen1.5-72b", hidden_size=8192, intermediate_size=24576, num_layers=80,
    num_heads=64, num_kv_heads=64, vocab_size=152064,
))

# ----------------------------------------------------------------------
# Draft models for speculative decoding (cost model / serving simulator).
# The small Llama-architecture checkpoints the speculative-decoding
# literature drafts with (JackFram/llama-68m, llama-160m, TinyLlama-1.1B):
# same tokenizer family as the Llama targets, 1-2 orders of magnitude
# fewer parameters, so a draft decode step is weight-traffic-cheap.
# ----------------------------------------------------------------------
register_config(ModelConfig(
    name="llama-68m", hidden_size=768, intermediate_size=3072, num_layers=2,
    num_heads=12, num_kv_heads=12, vocab_size=32000, max_seq_len=2048,
))
register_config(ModelConfig(
    name="llama-160m", hidden_size=768, intermediate_size=3072, num_layers=12,
    num_heads=12, num_kv_heads=12, vocab_size=32000, max_seq_len=2048,
))
register_config(ModelConfig(
    name="tinyllama-1.1b", hidden_size=2048, intermediate_size=5632,
    num_layers=22, num_heads=32, num_kv_heads=4, vocab_size=32000,
))

# ----------------------------------------------------------------------
# CPU-scale presets for accuracy experiments.
# ----------------------------------------------------------------------
register_config(ModelConfig(
    name="tiny-llama", hidden_size=64, intermediate_size=192, num_layers=2,
    num_heads=4, num_kv_heads=2, vocab_size=256, max_seq_len=512,
))
register_config(ModelConfig(
    name="small-llama", hidden_size=128, intermediate_size=384, num_layers=4,
    num_heads=8, num_kv_heads=4, vocab_size=512, max_seq_len=1024,
))
register_config(ModelConfig(
    name="medium-llama", hidden_size=256, intermediate_size=768, num_layers=6,
    num_heads=8, num_kv_heads=4, vocab_size=1024, max_seq_len=2048,
))


def scaled_down(name: str, base: str, factor: int, num_layers: int,
                vocab_size: int = 1024) -> ModelConfig:
    """Create and register a CPU-sized replica of a paper model.

    The replica keeps the GQA ratio and the FFN/hidden aspect ratio of the
    original architecture while dividing the widths by ``factor`` — useful
    when an experiment wants per-model structure (e.g. GQA vs MHA) without
    paying for full-size forward passes.
    """
    src = get_config(base)
    hidden = max(src.num_heads // factor, src.gqa_ratio) * src.head_dim // factor
    heads = max(src.num_heads // factor, src.gqa_ratio)
    kv_heads = max(src.num_kv_heads // factor, 1)
    heads = max(heads - heads % kv_heads, kv_heads)
    hidden = heads * max(src.head_dim // factor, 8)
    inter = int(round(hidden * src.intermediate_size / src.hidden_size / 8) * 8) or 8
    cfg = replace(
        src,
        name=name,
        hidden_size=hidden,
        intermediate_size=inter,
        num_layers=num_layers,
        num_heads=heads,
        num_kv_heads=kv_heads,
        vocab_size=vocab_size,
        max_seq_len=2048,
    )
    return register_config(cfg)
