"""Synthetic zero-shot and long-context evaluation suites.

Stand-ins for the paper's lm-eval zero-shot tasks (Table 3) and LongBench
(Table 5).  Each example is a multiple-choice problem scored by model
likelihood, exactly like lm-eval scores PIQA/ARC/HellaSwag/WinoGrande:

* **zero-shot tasks** — the context is a corpus prefix; the correct
  continuation is the sequence the bigram language actually produced, and the
  distractors are random sequences.  A model (quantized or not) that has
  preserved the FP16 model's predictive distribution picks the right
  continuation more often.
* **long-context tasks** — a "needle" token pattern is planted early in a long
  context; the question asks which pattern appeared.  Accuracy degrades when
  KV-cache quantization corrupts the long-range information, which is exactly
  the failure mode Table 5 checks for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.data.corpus import SyntheticCorpus
from repro.model.transformer import ForwardConfig, TransformerModel

__all__ = [
    "MultipleChoiceExample",
    "build_zero_shot_suite",
    "build_long_context_suite",
    "evaluate_task_accuracy",
    "ZERO_SHOT_TASK_NAMES",
    "LONG_CONTEXT_TASK_NAMES",
]

#: Names mirroring the five common-sense tasks of Table 3.
ZERO_SHOT_TASK_NAMES = ("PQ", "ARC-e", "ARC-c", "HS", "WG")

#: Names mirroring a subset of the LongBench tasks of Table 5.
LONG_CONTEXT_TASK_NAMES = (
    "Retrieve-1", "Retrieve-2", "Retrieve-4", "MultiHop", "Summary-Proxy",
)


@dataclass
class MultipleChoiceExample:
    """A likelihood-scored multiple-choice example."""

    context: np.ndarray
    choices: List[np.ndarray]
    answer: int


def _continuation_logprob(model: TransformerModel, context: np.ndarray,
                          continuation: np.ndarray,
                          forward_config: Optional[ForwardConfig]) -> float:
    """Total log-probability of ``continuation`` following ``context``."""
    tokens = np.concatenate([context, continuation])
    logits = model.forward(tokens[:-1], forward_config)
    # Positions len(context)-1 ... len(tokens)-2 predict the continuation.
    start = context.size - 1
    rel_logits = logits[start:]
    targets = continuation
    max_logit = np.max(rel_logits, axis=-1, keepdims=True)
    logsumexp = np.log(np.sum(np.exp(rel_logits - max_logit), axis=-1)) + max_logit[:, 0]
    target_logit = rel_logits[np.arange(targets.size), targets]
    return float(np.sum(target_logit - logsumexp))


def build_zero_shot_suite(
    corpus: SyntheticCorpus,
    num_examples_per_task: int = 16,
    context_len: int = 48,
    continuation_len: int = 8,
    num_choices: int = 4,
    seed: int = 0,
) -> Dict[str, List[MultipleChoiceExample]]:
    """Build the synthetic five-task zero-shot suite.

    Task difficulty is varied by shrinking the context (less evidence) for the
    later tasks, mimicking the accuracy spread across PIQA/ARC-c/etc.
    """
    rng = np.random.default_rng(seed)
    stream = corpus.eval_tokens
    vocab = corpus.config.vocab_size
    suite: Dict[str, List[MultipleChoiceExample]] = {}
    for t_idx, task in enumerate(ZERO_SHOT_TASK_NAMES):
        ctx_len = max(8, context_len - 8 * t_idx)
        examples = []
        for _ in range(num_examples_per_task):
            start = int(rng.integers(0, stream.size - ctx_len - continuation_len))
            context = stream[start:start + ctx_len].copy()
            true_cont = stream[start + ctx_len:start + ctx_len + continuation_len].copy()
            choices = [true_cont]
            for _ in range(num_choices - 1):
                choices.append(rng.integers(0, vocab, size=continuation_len))
            order = rng.permutation(num_choices)
            shuffled = [choices[i] for i in order]
            answer = int(np.where(order == 0)[0][0])
            examples.append(MultipleChoiceExample(context=context, choices=shuffled,
                                                  answer=answer))
        suite[task] = examples
    return suite


def build_long_context_suite(
    corpus: SyntheticCorpus,
    num_examples_per_task: int = 8,
    context_len: int = 256,
    needle_len: int = 4,
    num_choices: int = 4,
    seed: int = 1,
) -> Dict[str, List[MultipleChoiceExample]]:
    """Build the synthetic long-context (LongBench-like) suite.

    A needle (a short repeated token pattern) is planted near the beginning of
    a long context; the correct choice repeats the needle, the distractors are
    other patterns.  Retrieving it requires the early KV-cache entries to
    survive quantization.
    """
    rng = np.random.default_rng(seed)
    stream = corpus.eval_tokens
    vocab = corpus.config.vocab_size
    suite: Dict[str, List[MultipleChoiceExample]] = {}
    for t_idx, task in enumerate(LONG_CONTEXT_TASK_NAMES):
        depth = 8 + 16 * t_idx  # how deep into the context the needle sits
        examples = []
        for _ in range(num_examples_per_task):
            start = int(rng.integers(0, max(1, stream.size - context_len)))
            context = stream[start:start + context_len].copy()
            needle = rng.integers(0, vocab, size=needle_len)
            pos = min(depth, context.size - needle_len - 1)
            context[pos:pos + needle_len] = needle
            # Repeat the needle at the end as a retrieval cue.
            context[-needle_len:] = needle
            choices = [needle.copy()]
            for _ in range(num_choices - 1):
                choices.append(rng.integers(0, vocab, size=needle_len))
            order = rng.permutation(num_choices)
            shuffled = [choices[i] for i in order]
            answer = int(np.where(order == 0)[0][0])
            examples.append(MultipleChoiceExample(context=context, choices=shuffled,
                                                  answer=answer))
        suite[task] = examples
    return suite


def evaluate_task_accuracy(
    model: TransformerModel,
    suite: Dict[str, List[MultipleChoiceExample]],
    forward_config: Optional[ForwardConfig] = None,
) -> Dict[str, float]:
    """Accuracy per task plus the ``Avg.`` row of Tables 3 and 5."""
    results: Dict[str, float] = {}
    for task, examples in suite.items():
        correct = 0
        for ex in examples:
            scores = [
                _continuation_logprob(model, ex.context, choice, forward_config)
                for choice in ex.choices
            ]
            if int(np.argmax(scores)) == ex.answer:
                correct += 1
        results[task] = correct / len(examples) if examples else float("nan")
    results["Avg."] = float(np.mean([results[t] for t in suite]))
    return results
