"""Serving-system presets.

Each :class:`SystemConfig` binds a weight/activation/KV precision to the GPU
cost model's GEMM dataflow and attention kernel, plus the system-level
properties that affect achievable batch size (paged attention support,
activation workspace overhead).  The presets mirror the systems compared in
Table 4 / Figure 15.

The preset is also the single source of *KV geometry*:
:meth:`SystemConfig.kv_bytes_per_token` is the one formula every consumer of
per-token KV bytes shares — the page allocator
(:mod:`repro.serving.kv_cache_manager`), the cluster's transfer pricing and
the speculative decoder's draft-KV split all read the same float, so
per-precision geometry can never drift between layers.
:meth:`SystemConfig.demoted_kv_bytes_per_token` gives the same geometry at
the 4-bit *demoted* tier the prefix cache squeezes cold blocks into under
memory pressure (see :mod:`repro.serving.prefix_cache`).

Every preset is validated at import time: its ``gemm_precision`` and
``attention_kernel`` must resolve in the GPU cost model's registries, so a
typo in a preset fails at import instead of deep inside a serving run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a hard gpu import
    from repro.model.config import ModelConfig

__all__ = [
    "SystemConfig",
    "SYSTEM_PRESETS",
    "get_system",
    "validate_presets",
    "DEMOTED_KV_BITS",
    "DYNAMIC_KV_PARAM_BYTES",
]


@dataclass(frozen=True)
class SystemConfig:
    """One serving system / precision configuration.

    Attributes
    ----------
    gemm_precision:
        Key into :data:`repro.gpu.gemm.GEMM_PRECISIONS` used for all linear
        layers of the transformer blocks.
    attention_kernel:
        Key into :data:`repro.gpu.attention_kernel.KV_KERNELS` used for the
        decoding-stage attention.
    weight_bits / kv_bits:
        Storage precision used for memory accounting.
    paged_kv:
        Whether the system supports paged KV caches.  Systems without it
        (QuaRot) must reserve contiguous KV memory for the full maximum
        sequence length up front, which shrinks the achievable batch.
    activation_workspace_factor:
        Fraction of weight memory reserved for activations / workspace.
    kv_param_overhead:
        Extra bytes per token per KV head for dynamically stored scales and
        zero points (QServe's per-head dynamic quantization).
    runtime_efficiency:
        Fraction of the cost-model latency the system's runtime actually
        achieves.  TensorRT-LLM and QServe are tuned production runtimes
        (1.0); the Atom and QuaRot research prototypes are substantially less
        efficient — the paper attributes part of their Figure 2b gap to "the
        inefficient runtime in these two systems".  The factors are calibrated
        against Figure 2b (Atom 817 and QuaRot 986 tok/s vs 2104 for
        TRT-W8A8 on Llama-2-7B/A100).
    """

    name: str
    gemm_precision: str
    attention_kernel: str
    weight_bits: float
    kv_bits: float
    paged_kv: bool = True
    activation_workspace_factor: float = 0.10
    kv_param_overhead: float = 0.0
    runtime_efficiency: float = 1.0

    @property
    def is_qserve(self) -> bool:
        return self.name.startswith("qserve")

    @property
    def min_precision_bits(self) -> float:
        """Lowest storage precision anywhere in the serving path.

        ``min(weight_bits, kv_bits)`` — the number a quality floor compares
        against: a request demanding full-precision serving
        (``Request.precision_floor_bits``) is satisfied only by replicas
        whose weights *and* KV cache both meet the floor.
        """
        return min(self.weight_bits, self.kv_bits)

    # ------------------------------------------------------------------
    # KV geometry (single source of truth — see module docstring)
    # ------------------------------------------------------------------
    def kv_bytes_per_token(self, model: "ModelConfig") -> float:
        """KV bytes per token across all layers, including the dynamic
        per-head scales/zero points this system stores in-page."""
        payload = 2 * model.num_layers * model.kv_dim * self.kv_bits / 8.0
        params = model.num_layers * model.num_kv_heads * self.kv_param_overhead
        return payload + params

    def demoted_kv_bytes_per_token(self, model: "ModelConfig") -> float:
        """KV bytes per token at the *demoted* (cold, 4-bit) block tier.

        Demotion re-quantizes a block to :data:`DEMOTED_KV_BITS` with
        per-head dynamic scales (:data:`DYNAMIC_KV_PARAM_BYTES`), the same
        storage layout as QServe's KV4 cache.  A system already storing KV
        at or below 4 bits gains nothing — the value is floored at the
        system's native footprint, so ``demotion_supported`` can key off a
        strict byte saving.
        """
        payload = 2 * model.num_layers * model.kv_dim * DEMOTED_KV_BITS / 8.0
        params = (model.num_layers * model.num_kv_heads
                  * max(self.kv_param_overhead, DYNAMIC_KV_PARAM_BYTES))
        return min(self.kv_bytes_per_token(model), payload + params)


#: Per-head FP16 scale + zero point for K and V (4 x 2 bytes per token per head).
_DYNAMIC_KV_PARAM_BYTES = 8.0
#: Public alias: dynamic-parameter bytes per token per KV head at any
#: dynamically quantized tier (presets and the demoted block tier share it).
DYNAMIC_KV_PARAM_BYTES = _DYNAMIC_KV_PARAM_BYTES

#: Storage precision cold prefix-cache blocks are demoted to under memory
#: pressure (QServe's KV4 tier; see ``docs/COST_MODEL.md``).
DEMOTED_KV_BITS = 4.0

SYSTEM_PRESETS: Dict[str, SystemConfig] = {
    "trt-fp16": SystemConfig(
        name="trt-fp16", gemm_precision="fp16", attention_kernel="kv16",
        weight_bits=16, kv_bits=16),
    "trt-w8a8": SystemConfig(
        name="trt-w8a8", gemm_precision="w8a8", attention_kernel="kv8-trt",
        weight_bits=8, kv_bits=8),
    "trt-w4a16": SystemConfig(
        name="trt-w4a16", gemm_precision="w4a16", attention_kernel="kv16",
        weight_bits=4, kv_bits=16),
    "atom-w4a4": SystemConfig(
        name="atom-w4a4", gemm_precision="w4a4-atom", attention_kernel="kv4-naive",
        weight_bits=4.5, kv_bits=4,  # mixed-precision salient channels
        kv_param_overhead=_DYNAMIC_KV_PARAM_BYTES, runtime_efficiency=0.40),
    "quarot-w4a4": SystemConfig(
        name="quarot-w4a4", gemm_precision="w4a4-quarot", attention_kernel="kv4-naive",
        weight_bits=4, kv_bits=4, paged_kv=False,
        kv_param_overhead=_DYNAMIC_KV_PARAM_BYTES, runtime_efficiency=0.45),
    "qserve-w4a8kv4-chn": SystemConfig(
        name="qserve-w4a8kv4-chn", gemm_precision="w4a8-qserve-chn",
        attention_kernel="kv4-qserve", weight_bits=4, kv_bits=4,
        kv_param_overhead=_DYNAMIC_KV_PARAM_BYTES),
    "qserve-w4a8kv4-grp": SystemConfig(
        name="qserve-w4a8kv4-grp", gemm_precision="w4a8-qserve-grp",
        attention_kernel="kv4-qserve", weight_bits=4.25,  # group scales/zeros
        kv_bits=4, kv_param_overhead=_DYNAMIC_KV_PARAM_BYTES),
}


def get_system(name: str) -> SystemConfig:
    """Look up a serving-system preset by name."""
    try:
        return SYSTEM_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(SYSTEM_PRESETS))
        raise KeyError(f"unknown system {name!r}; known: {known}") from None


def validate_presets(presets: Dict[str, SystemConfig] = SYSTEM_PRESETS) -> None:
    """Check every preset resolves in the GPU cost model's registries.

    A preset whose ``gemm_precision`` or ``attention_kernel`` is not a key of
    :data:`repro.gpu.gemm.GEMM_PRECISIONS` /
    :data:`repro.gpu.attention_kernel.KV_KERNELS` would otherwise only fail
    when an engine is built around it.  Run at import so the failure is
    immediate and names the broken preset.  The imports are deferred to keep
    :mod:`repro.serving.precision` importable without pulling the whole GPU
    package in at module load order-sensitively.
    """
    from repro.gpu.attention_kernel import KV_KERNELS
    from repro.gpu.gemm import GEMM_PRECISIONS

    for key, preset in presets.items():
        if preset.gemm_precision not in GEMM_PRECISIONS:
            raise ValueError(
                f"system preset {key!r} names unknown gemm_precision "
                f"{preset.gemm_precision!r}; known: "
                f"{', '.join(sorted(GEMM_PRECISIONS))}")
        if preset.attention_kernel not in KV_KERNELS:
            raise ValueError(
                f"system preset {key!r} names unknown attention_kernel "
                f"{preset.attention_kernel!r}; known: "
                f"{', '.join(sorted(KV_KERNELS))}")


validate_presets()
