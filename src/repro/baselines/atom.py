"""Atom-style W4A4 g128 quantization (Zhao et al., 2023).

Atom keeps the most salient input channels (identified from calibration
activations) in higher precision (INT8) and quantizes the remaining channels
to INT4 with per-group scales, for both weights and activations; the KV cache
is quantized to 4 bits.  This mixed-precision strategy is what QoQ's
activation-aware channel reordering replaces (Section 4.3.3).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.model.quantized import ActQuantSpec, FakeQuantLinear
from repro.model.transformer import ForwardConfig, TransformerModel
from repro.quant.dtypes import INT4, INT8
from repro.quant.kv_quant import KVQuantConfig
from repro.quant.quantizer import Granularity, fake_quantize

__all__ = ["quantize_atom", "AtomLinear"]


class AtomLinear(FakeQuantLinear):
    """Linear layer with Atom's mixed-precision activation quantization.

    The weight passed in is already fake-quantized (INT8 for salient columns,
    INT4 groups elsewhere).  At runtime the salient activation channels are
    quantized to INT8 and the rest to INT4 per group, matching Atom's kernel.
    """

    def __init__(self, weight: np.ndarray, salient: np.ndarray, name: str = "",
                 group_size: Optional[int] = None) -> None:
        super().__init__(weight, name=name, act_spec=ActQuantSpec(bits=16))
        self.salient = np.asarray(salient, dtype=np.int64)
        self.act_group_size = group_size

    def __call__(self, x: np.ndarray) -> np.ndarray:
        t = self._transform_input(x)
        flat = t.reshape(-1, t.shape[-1])
        quantized = np.empty_like(flat)
        mask = np.zeros(flat.shape[1], dtype=bool)
        mask[self.salient] = True
        if mask.any():
            quantized[:, mask] = fake_quantize(
                flat[:, mask], INT8, granularity=Granularity.PER_TOKEN, symmetric=True)
        rest = flat[:, ~mask]
        if rest.shape[1] > 0:
            g = self.act_group_size
            if g and rest.shape[1] % g == 0:
                quantized[:, ~mask] = fake_quantize(
                    rest, INT4, granularity=Granularity.PER_GROUP, symmetric=True,
                    group_size=g)
            else:
                quantized[:, ~mask] = fake_quantize(
                    rest, INT4, granularity=Granularity.PER_TOKEN, symmetric=True)
        out = quantized.reshape(t.shape) @ self.weight.T
        return out


def quantize_atom(
    model: TransformerModel,
    calibration_batches: List[np.ndarray],
    group_size: Optional[int] = 128,
    kv_bits: int = 4,
    salient_fraction: float = 0.05,
) -> tuple[TransformerModel, ForwardConfig]:
    """Quantize ``model`` to Atom-style W4A4 g128 KV4.

    ``salient_fraction`` of the input channels (by calibration activation
    magnitude) are kept in INT8 for both weights and activations; the paper's
    Atom keeps 128 of 4096 channels, i.e. ~3%.
    """
    work = model.clone()
    recorder = work.run_calibration(calibration_batches)
    fwd = ForwardConfig(kv_quant=KVQuantConfig(bits=kv_bits, per_head=True))

    for name, layer in work.named_linears().items():
        weight = np.asarray(layer.weight, dtype=np.float64)
        in_features = weight.shape[1]
        g = group_size if (group_size and in_features % group_size == 0) else None
        act_absmax = recorder.absmax[name]
        n_salient = max(1, int(round(salient_fraction * in_features)))
        salient = np.argsort(-act_absmax, kind="stable")[:n_salient]

        w_q = np.empty_like(weight)
        mask = np.zeros(in_features, dtype=bool)
        mask[salient] = True
        w_q[:, mask] = fake_quantize(weight[:, mask], INT8,
                                     granularity=Granularity.PER_CHANNEL,
                                     symmetric=True)
        rest = weight[:, ~mask]
        if rest.shape[1] > 0:
            if g and rest.shape[1] % g == 0:
                w_q[:, ~mask] = fake_quantize(rest, INT4,
                                              granularity=Granularity.PER_GROUP,
                                              symmetric=False, group_size=g)
            else:
                w_q[:, ~mask] = fake_quantize(rest, INT4,
                                              granularity=Granularity.PER_CHANNEL,
                                              symmetric=False)
        work.set_linear(name, AtomLinear(w_q, salient, name=name, group_size=g))
    return work, fwd
