"""Roofline analysis (Figure 3).

For an ``m x n x k`` GEMM in LLM decoding, ``m`` is the number of sequences
and ``n, k`` are channel dimensions, so the computation intensity in
MACs/element is approximately ``m`` and the memory traffic is dominated by the
weights.  The attainable throughput of a precision configuration is

``min(peak tensor-core TOPS, intensity_ops_per_byte * DRAM bandwidth)``.

The paper's Figure 3 draws these curves for W4A16 (FP16 tensor cores, 4-bit
weights), W8A8 and W4A8 (INT8 tensor cores, 8- / 4-bit weights) and for
attention with FP16/INT8/INT4 KV caches, and reads off the W4A16/W8A8
crossover at ``m ≈ 78``.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.specs import GPUSpec

__all__ = [
    "gemm_roofline_tops",
    "attention_roofline_tops",
    "roofline_crossover_batch",
]


def _weight_bytes_per_element(weight_bits: float) -> float:
    return weight_bits / 8.0


def gemm_roofline_tops(
    spec: GPUSpec,
    batch: float,
    weight_bits: int,
    act_bits: int,
    use_peak_bandwidth: bool = True,
) -> float:
    """Attainable GEMM throughput (TOPS) at decode batch size ``batch``.

    The compute dtype is FP16 tensor cores when ``act_bits == 16`` and INT8
    tensor cores otherwise (INT4 tensor cores would require W4A4).  Memory
    traffic per MAC is dominated by weight bytes / ``batch`` — each weight
    element is reused ``batch`` times.
    """
    if act_bits == 16:
        peak = spec.tensor_core_tops("fp16")
    elif act_bits == 8:
        peak = spec.tensor_core_tops("int8")
    elif act_bits == 4:
        peak = spec.tensor_core_tops("int4")
    else:
        raise ValueError(f"unsupported activation precision: {act_bits}")
    bandwidth = spec.memory_bandwidth_gbps if use_peak_bandwidth \
        else spec.effective_bandwidth_gbps
    # ops/byte: 2 ops (1 MAC) per weight element amortised over `batch` rows.
    ops_per_byte = 2.0 * batch / _weight_bytes_per_element(weight_bits)
    memory_bound_tops = ops_per_byte * bandwidth / 1e3  # GB/s * ops/B = GOPS
    return float(min(peak, memory_bound_tops))


def attention_roofline_tops(spec: GPUSpec, kv_bits: int,
                            use_peak_bandwidth: bool = True) -> float:
    """Attainable decode-attention throughput for a KV precision.

    Decode attention is a batched GEMV with a computation intensity of
    1 MAC/element regardless of batch size, so the attainable throughput is
    purely memory bound and scales inversely with KV-cache bytes per element —
    KV4 doubles it over KV8 (Section 3.1).
    """
    bandwidth = spec.memory_bandwidth_gbps if use_peak_bandwidth \
        else spec.effective_bandwidth_gbps
    ops_per_byte = 2.0 / (kv_bits / 8.0)
    return float(ops_per_byte * bandwidth / 1e3)


def roofline_crossover_batch(spec: GPUSpec, weight_bits_a: int, act_bits_a: int,
                             weight_bits_b: int, act_bits_b: int,
                             max_batch: int = 512) -> float:
    """Batch size where configuration B overtakes configuration A.

    For the paper's W4A16 vs W8A8 comparison on A100 this lands near 78
    (W4A16 wins below, W8A8 above).  Returns ``inf`` if B never overtakes A in
    ``[1, max_batch]``.
    """
    batches = np.arange(1, max_batch + 1, dtype=np.float64)
    a = np.array([gemm_roofline_tops(spec, m, weight_bits_a, act_bits_a)
                  for m in batches])
    b = np.array([gemm_roofline_tops(spec, m, weight_bits_b, act_bits_b)
                  for m in batches])
    better = np.nonzero(b > a)[0]
    if better.size == 0:
        return float("inf")
    return float(batches[better[0]])
