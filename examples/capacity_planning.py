"""Capacity planning for spiky, multi-tenant production traffic.

Three sections, all on the flash-crowd workload of the production traffic
layer (:mod:`repro.serving.traffic`):

1. **Static sweep** — serve the same 10x flash crowd on 1..4 replicas and
   find the smallest fleet whose p99 TTFT meets the SLO.  This is the
   classic peak-provisioning answer: buy for the spike, idle the rest of
   the day.
2. **Tier breakdown** — what SLO tiers buy under the same pressure: with
   tier-aware admission, paid requests hold their TTFT through the spike
   while deferrable free traffic absorbs the queueing (and, with shedding
   enabled, the overload).
3. **Reactive autoscaling** — the autoscaler against a static fleet sized
   at the autoscaled peak: same SLO attainment class, fewer provisioned
   GPU-seconds, with every scaling action and its trigger printed.

Run with:  python examples/capacity_planning.py [model-name]
"""

import sys

from repro.experiments.runner import format_table
from repro.gpu import A100
from repro.model import get_config
from repro.serving import (
    AutoscalerConfig,
    ClusterEngine,
    SCHEDULING_PRESETS,
    SYSTEM_PRESETS,
    make_flash_crowd_workload,
)

#: Latency SLO the capacity plan targets.
TTFT_SLO_S, TPOT_SLO_S = 0.5, 0.05
#: Replica-pool bound of the sweep and the autoscaler ceiling.
MAX_REPLICAS = 4


def _spike_workload(num_requests=260, base_rate=4.0, spike_rate=40.0):
    return make_flash_crowd_workload(
        num_requests, base_rate=base_rate,
        spikes=((5.0, spike_rate, 6.0),),
        prompt_len=512, output_len=200, tenants=4, free_fraction=0.5, seed=7)


def _cluster(model_name: str, num_replicas: int) -> ClusterEngine:
    return ClusterEngine(get_config(model_name), A100,
                         SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                         num_replicas=num_replicas, max_seq_len=2048)


def static_sweep(model_name: str) -> None:
    workload = _spike_workload()
    print(f"Static capacity sweep for {model_name} on A100 "
          f"(4 req/s baseline, 10x flash crowd, "
          f"SLO: p99 TTFT <= {TTFT_SLO_S * 1e3:.0f} ms):\n")
    rows, min_replicas = [], None
    for n in range(1, MAX_REPLICAS + 1):
        result = _cluster(model_name, n).serve(
            workload.copy_fresh(), router="least-outstanding",
            max_num_seqs=8, scheduling=SCHEDULING_PRESETS["tiered"])
        p99 = result.metrics.ttft.p99
        meets = p99 <= TTFT_SLO_S
        if meets and min_replicas is None:
            min_replicas = n
        rows.append([n, round(p99 * 1e3, 1),
                     round(result.gpu_seconds, 1),
                     "yes" if meets else "no"])
    print(format_table(
        ["Replicas", "TTFT p99 (ms)", "GPU-seconds", "Meets SLO"], rows))
    print(f"\nminimum fleet for the SLO: {min_replicas} replica(s)")


def tier_breakdown(model_name: str) -> None:
    workload = _spike_workload()
    print(f"\nSLO tiers under the same spike on "
          f"{MAX_REPLICAS - 1} replicas (tier-aware admission, "
          f"free tier deferrable):\n")
    result = _cluster(model_name, MAX_REPLICAS - 1).serve(
        workload.copy_fresh(), router="least-outstanding",
        max_num_seqs=8, scheduling=SCHEDULING_PRESETS["tiered"])
    rows = []
    for tier, m in result.metrics.by_tier().items():
        rows.append([tier, len(m.requests),
                     round(m.ttft.p50 * 1e3, 1),
                     round(m.ttft.p99 * 1e3, 1),
                     round(m.slo_attainment(TTFT_SLO_S, TPOT_SLO_S), 3)])
    print(format_table(
        ["Tier", "Requests", "TTFT p50 (ms)", "TTFT p99 (ms)",
         "SLO attainment"], rows))


def autoscaling_study(model_name: str) -> None:
    # A gentler spike: the regime reactive scaling is built for, where the
    # ramp is comparable to the cold start it must pay.
    workload = _spike_workload(220, base_rate=2.0, spike_rate=30.0)
    autoscaler = AutoscalerConfig(
        min_replicas=1, max_replicas=MAX_REPLICAS, interval_s=2.0,
        scale_up_queue_depth=2.0, up_cooldown_s=2.0, down_cooldown_s=4.0,
        scale_down_outstanding=6.0, ttft_slo_s=TTFT_SLO_S)
    auto = _cluster(model_name, MAX_REPLICAS).serve(
        workload.copy_fresh(), router="least-outstanding", max_num_seqs=8,
        scheduling=SCHEDULING_PRESETS["tiered"], autoscaler=autoscaler)
    report = auto.autoscale
    static = _cluster(model_name, report.peak_replicas).serve(
        workload.copy_fresh(), router="least-outstanding", max_num_seqs=8,
        scheduling=SCHEDULING_PRESETS["tiered"])
    print(f"\nReactive autoscaling vs the equal-peak static fleet "
          f"({report.peak_replicas} replicas, cold start "
          f"{report.cold_start_s:.2f}s):\n")
    rows = []
    for label, result in (("autoscaled", auto), ("static-peak", static)):
        m = result.metrics
        rows.append([label, round(result.gpu_seconds, 1),
                     round(m.slo_attainment(TTFT_SLO_S * 2, TPOT_SLO_S), 3),
                     round(m.ttft.p50 * 1e3, 1),
                     round(m.ttft.p99 * 1e3, 1)])
    print(format_table(
        ["Fleet", "GPU-seconds", "SLO attainment", "TTFT p50 (ms)",
         "TTFT p99 (ms)"], rows))
    saved = 1.0 - auto.gpu_seconds / static.gpu_seconds
    print(f"\nGPU-seconds returned by autoscaling: {saved:.0%}")
    print("\nScaling timeline:")
    for event in report.events:
        print(f"  t={event.time_s:6.2f}s  {event.action:4s} replica "
              f"{event.replica} ({event.reason}); "
              f"{event.num_active} serving")


def main(model_name: str = "llama-2-7b") -> None:
    static_sweep(model_name)
    tier_breakdown(model_name)
    autoscaling_study(model_name)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "llama-2-7b")
