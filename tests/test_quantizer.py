"""Tests for the generic quantizer, including property-based round trips."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quant import (
    Granularity,
    INT4,
    INT8,
    UINT4,
    compute_qparams,
    dequantize,
    fake_quantize,
    quantization_error,
    quantize,
)


def _random_matrix(rows=8, cols=32, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return rng.normal(0, scale, size=(rows, cols))


@pytest.mark.parametrize("granularity,group", [
    (Granularity.PER_TENSOR, None),
    (Granularity.PER_CHANNEL, None),
    (Granularity.PER_TOKEN, None),
    (Granularity.PER_GROUP, 8),
])
@pytest.mark.parametrize("symmetric", [True, False])
def test_roundtrip_error_bounded_by_scale(granularity, group, symmetric):
    x = _random_matrix()
    fmt = INT8 if symmetric else UINT4
    params = compute_qparams(x, fmt, granularity=granularity, symmetric=symmetric,
                             group_size=group)
    x_hat = dequantize(quantize(x, params), params)
    # Round-to-nearest error is bounded by half the largest scale per element.
    assert np.max(np.abs(x - x_hat)) <= 0.5 * np.max(params.scale) + 1e-9


def test_per_channel_scales_shape():
    x = _random_matrix(rows=4, cols=16)
    params = compute_qparams(x, INT8, Granularity.PER_CHANNEL)
    assert params.scale.shape == (4, 1)
    assert params.num_parameters == 4


def test_per_group_requires_divisible_columns():
    x = _random_matrix(rows=2, cols=10)
    with pytest.raises(ValueError):
        compute_qparams(x, INT8, Granularity.PER_GROUP, group_size=4)


def test_symmetric_requires_signed_format():
    with pytest.raises(ValueError):
        compute_qparams(_random_matrix(), UINT4, symmetric=True)


def test_asymmetric_beats_symmetric_on_shifted_data():
    rng = np.random.default_rng(0)
    x = rng.uniform(5.0, 6.0, size=(4, 64))  # strictly positive, narrow range
    sym = fake_quantize(x, INT4, Granularity.PER_CHANNEL, symmetric=True)
    asym = fake_quantize(x, UINT4, Granularity.PER_CHANNEL, symmetric=False)
    assert quantization_error(x, asym) < quantization_error(x, sym)


def test_group_quant_beats_per_channel_with_outlier_columns():
    x = _random_matrix(rows=8, cols=64, seed=3)
    x[:, :4] *= 50.0  # concentrated outliers blow up the per-channel scale
    per_channel = fake_quantize(x, UINT4, Granularity.PER_CHANNEL, symmetric=False)
    per_group = fake_quantize(x, UINT4, Granularity.PER_GROUP, symmetric=False,
                              group_size=8)
    err_pc = quantization_error(x[:, 4:], per_channel[:, 4:])
    err_pg = quantization_error(x[:, 4:], per_group[:, 4:])
    assert err_pg < err_pc


def test_clip_ratio_shrinks_scale():
    x = _random_matrix()
    full = compute_qparams(x, INT8, Granularity.PER_CHANNEL, clip_ratio=1.0)
    clipped = compute_qparams(x, INT8, Granularity.PER_CHANNEL, clip_ratio=0.5)
    assert np.all(clipped.scale <= full.scale + 1e-12)


def test_qmax_override_protective_range():
    x = _random_matrix()
    params = compute_qparams(x, INT8, Granularity.PER_CHANNEL, qmax_override=119)
    codes = quantize(x, params)
    assert codes.max() <= 119 and codes.min() >= -119


def test_quantization_error_orders():
    x = np.ones((2, 4))
    y = np.zeros((2, 4))
    assert quantization_error(x, y, "mse") == 1.0
    assert quantization_error(x, y, "mae") == 1.0
    assert quantization_error(x, y, "fro") == pytest.approx(np.sqrt(8))
    with pytest.raises(ValueError):
        quantization_error(x, y, "bogus")


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 6), st.integers(1, 8), st.floats(0.1, 50.0),
       st.booleans(), st.integers(0, 2 ** 31 - 1))
def test_fake_quant_idempotent_and_bounded(rows, cols_groups, scale, symmetric, seed):
    """Property: fake-quantizing twice equals fake-quantizing once, and the
    result never exceeds the input's dynamic range."""
    cols = cols_groups * 4
    rng = np.random.default_rng(seed)
    x = rng.normal(0, scale, size=(rows, cols))
    fmt = INT8 if symmetric else UINT4
    once = fake_quantize(x, fmt, Granularity.PER_CHANNEL, symmetric=symmetric)
    twice = fake_quantize(once, fmt, Granularity.PER_CHANNEL, symmetric=symmetric)
    np.testing.assert_allclose(once, twice, atol=1e-9)
    if symmetric:
        # Symmetric quantization never increases the dynamic range (asymmetric
        # can shift values by up to half a step via the rounded zero point).
        assert np.max(np.abs(once)) <= np.max(np.abs(x)) * (1 + 1e-9) + 1e-9
