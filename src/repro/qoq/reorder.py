"""Activation-aware channel reordering (Section 4.3.3, Figure 10).

Per-group weight quantization shares one scale per ``g`` consecutive input
channels.  If a group mixes salient channels (large activations) with
non-salient ones, the shared scale is forced to cover the salient channels'
weights, wasting resolution on the rest.  Instead of the mixed-precision
approach of Atom, QoQ reorders input channels by activation salience so that
channels of similar salience share a group.  Weights are reordered offline;
the activation uses the same permutation at runtime (free in the real kernel
because it is folded into the preceding layer's output channels).
"""

from __future__ import annotations

import numpy as np

__all__ = ["compute_reorder_permutation"]


def compute_reorder_permutation(act_absmax: np.ndarray) -> np.ndarray:
    """Permutation sorting input channels by descending activation salience.

    ``act_absmax`` is the per-channel ``max(|X|)`` statistic recorded during
    calibration.  Ties are broken by channel index so the permutation is
    deterministic.
    """
    act_absmax = np.asarray(act_absmax, dtype=np.float64).reshape(-1)
    # np.argsort is stable with kind="stable"; sort by negative salience.
    return np.argsort(-act_absmax, kind="stable")
