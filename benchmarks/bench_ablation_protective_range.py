"""Ablation benchmark: the protective range of progressive quantization.

Quantifies how often level-2 dequantization would overflow INT8 without the
[-119, 119] protective range (Section 4.1), and verifies it never overflows
with it — the design choice that enables register-level parallelism.
"""

import numpy as np

from repro.quant.progressive import progressive_dequantize_level1, progressive_quantize


def _overflow_rate(protective: bool, trials: int = 50) -> float:
    rng = np.random.default_rng(0)
    overflows = 0
    for _ in range(trials):
        weight = rng.normal(0, rng.uniform(0.05, 1.0), size=(16, 128))
        weight[rng.integers(0, 16), rng.integers(0, 128)] *= 25
        pqw = progressive_quantize(weight, group_size=32, protective_range=protective)
        try:
            progressive_dequantize_level1(pqw)
        except OverflowError:
            overflows += 1
    return overflows / trials


def test_protective_range_eliminates_overflow(benchmark):
    rate_with = benchmark.pedantic(_overflow_rate, args=(True,), rounds=1, iterations=1)
    rate_without = _overflow_rate(False)
    print(f"\noverflow rate: protective={rate_with:.2f}, naive={rate_without:.2f}")
    assert rate_with == 0.0
    assert rate_without > 0.1
