"""Multi-model multiplexing: shared fleets vs static partitions.

Production clusters rarely serve one model.  A provider hosting a large and
a small chat model can either *partition* its GPUs (dedicate replicas per
model, provisioning each partition for that model's peak) or *multiplex*
(let every replica host any model, swapping weights in and out of HBM as
the mix shifts).  This example prices both on the same skewed trace:

1. **Residency accounting** — what each model costs in HBM (weights +
   activation workspace), what fits next to the statically carved per-model
   KV pools, and what a swap-in costs over the host link (the same formula
   as an autoscaler cold start).
2. **Shared vs partitioned fleet** — an 80/20 two-model trace on a
   4-replica multiplexed fleet with warm-first (model-aware) routing
   against a 2+2 statically partitioned fleet: aggregate SLO goodput and
   GPU-seconds, swap costs priced in.
3. **Per-model SLOs and swap telemetry** — ``by_model()`` latency
   breakouts and the residency report: who swapped, how often, and how
   the fleet partitioned itself.

Run with:  python examples/multi_model_serving.py [model-name]
"""

import sys

from repro.experiments.runner import format_table
from repro.gpu import A100
from repro.model import get_config
from repro.serving import (
    ClusterEngine,
    MultiplexConfig,
    ServingEngine,
    SYSTEM_PRESETS,
    Workload,
    make_multi_model_workload,
)

#: Latency SLO the comparison scores against.
TTFT_SLO_S, TPOT_SLO_S = 1.0, 0.1
#: The skewed two-model mix: 80% of traffic targets the primary model.
MODELS = ("llama-2-7b", "llama-2-13b")
WEIGHTS = (0.8, 0.2)
NUM_REPLICAS = 4
SYSTEM = SYSTEM_PRESETS["trt-fp16"]


def _workload(seed=11, num_requests=240, arrival_rate=60.0):
    return make_multi_model_workload(
        num_requests, models=MODELS, weights=WEIGHTS,
        arrival_rate=arrival_rate, prompt_len=256, output_len=64, seed=seed)


def residency_accounting(primary: str) -> None:
    models = (get_config(primary), get_config(MODELS[1]))
    config = MultiplexConfig(models=models, max_resident_models=1)
    cluster = ClusterEngine(models[0], A100, SYSTEM, num_replicas=1)
    result = cluster.serve(_workload(num_requests=20, arrival_rate=4.0),
                           router="model-aware", multiplex=config)
    snap = result.multiplex.replicas[0]
    gib = 1 << 30
    print(f"Residency accounting on {A100.name} "
          f"({A100.memory_gib:.0f} GiB HBM), one resident model:\n")
    rows = []
    for model in models:
        engine = ServingEngine(model, A100, SYSTEM)
        rows.append([model.name,
                     round(engine.weight_bytes() / gib, 1),
                     round(config.host_link.transfer_latency(
                         engine.weight_bytes()), 2)])
    print(format_table(["Model", "Weights (GiB)", "Swap-in (s)"], rows))
    print(f"\nweight budget {snap.weight_budget_bytes / gib:.1f} GiB, "
          f"per-model KV pool {snap.kv_pool_bytes / gib:.1f} GiB x "
          f"{len(models)} models")


def shared_vs_partitioned(primary: str) -> None:
    models = (get_config(primary), get_config(MODELS[1]))
    workload = _workload()
    shared = ClusterEngine(models[0], A100, SYSTEM,
                           num_replicas=NUM_REPLICAS).serve(
        workload.copy_fresh(), router="model-aware", max_num_seqs=16,
        multiplex=MultiplexConfig(models=models, max_resident_models=1))

    # Static partition: half the fleet per model, each serving only its own
    # slice of the trace.
    per_model = {m.name: [] for m in models}
    for request in workload.copy_fresh().requests:
        per_model[request.model].append(request)
    partition_results = []
    for model in models:
        sub = Workload(requests=per_model[model.name])
        partition_results.append(
            ClusterEngine(model, A100, SYSTEM,
                          num_replicas=NUM_REPLICAS // 2).serve(
                sub, router="least-outstanding", max_num_seqs=16))

    def goodput(results):
        ok = sum(r.slo_goodput(TTFT_SLO_S, TPOT_SLO_S) * r.total_time_s
                 for r in results)
        return ok / max(r.total_time_s for r in results)

    shared_good = shared.slo_goodput(TTFT_SLO_S, TPOT_SLO_S)
    part_good = goodput(partition_results)
    part_gpu_s = sum(r.gpu_seconds for r in partition_results)
    print(f"\nShared multiplexed fleet ({NUM_REPLICAS} replicas, warm-first "
          f"routing) vs static partition "
          f"({NUM_REPLICAS // 2}+{NUM_REPLICAS // 2}), 80/20 trace:\n")
    rows = [
        ["multiplexed", round(shared_good, 2), round(shared.gpu_seconds, 1),
         round(shared.metrics.ttft.p99 * 1e3, 1), shared.multiplex.swap_ins],
        ["partitioned", round(part_good, 2), round(part_gpu_s, 1),
         round(max(r.metrics.ttft.p99 for r in partition_results) * 1e3, 1),
         0],
    ]
    print(format_table(
        ["Fleet", "SLO goodput (req/s)", "GPU-seconds", "TTFT p99 (ms)",
         "Swap-ins"], rows))
    gain = shared_good / part_good - 1.0 if part_good else float("inf")
    print(f"\naggregate SLO-goodput gain from multiplexing: {gain:+.0%} "
          f"(swap costs priced in)")


def per_model_slos(primary: str) -> None:
    models = (get_config(primary), get_config(MODELS[1]))
    result = ClusterEngine(models[0], A100, SYSTEM,
                           num_replicas=NUM_REPLICAS).serve(
        _workload(), router="model-aware", max_num_seqs=16,
        multiplex=MultiplexConfig(models=models, max_resident_models=1))
    print("\nPer-model SLOs on the multiplexed fleet:\n")
    rows = []
    for name, m in sorted(result.metrics.by_model().items()):
        rows.append([name, len(m.requests),
                     round(m.ttft.p50 * 1e3, 1),
                     round(m.ttft.p99 * 1e3, 1),
                     round(m.slo_attainment(TTFT_SLO_S, TPOT_SLO_S), 3)])
    print(format_table(
        ["Model", "Requests", "TTFT p50 (ms)", "TTFT p99 (ms)",
         "SLO attainment"], rows))
    report = result.multiplex
    print(f"\nswaps: {report.swap_ins} in / {report.swap_outs} out, "
          f"{report.swap_in_s:.2f}s of replica time on weight transfers")
    for i, snap in enumerate(report.replicas):
        print(f"  replica {i}: resident {snap.resident} "
              f"(swap-ins by model: {dict(snap.swap_ins_by_model) or '-'})")


def main(model_name: str = "llama-2-7b") -> None:
    residency_accounting(model_name)
    shared_vs_partitioned(model_name)
    per_model_slos(model_name)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "llama-2-7b")
