"""Accuracy study: regenerate the Table 2 / Table 3 / Figure 16 comparisons.

Runs the full accuracy experiment suite on the synthetic substrate — every
baseline (SmoothQuant, GPTQ-R, AWQ, QuaRot, Atom, RTN) against QoQ — and the
step-by-step QoQ ablation of Figure 16.

Run with:  python examples/accuracy_study.py [tiny|small|medium]
(The "small" scale matches the numbers recorded in EXPERIMENTS.md and takes a
few minutes on a laptop; "tiny" finishes in well under a minute.)
"""

import sys

from repro.experiments import (
    fig16_ablation,
    table2_perplexity,
    table3_zeroshot,
    table5_longbench,
)
from repro.experiments.accuracy_common import build_setup


def main(scale: str = "tiny") -> None:
    setup = build_setup(scale, seed=0)
    print(table2_perplexity.run(setup=setup).to_text("{:.3f}"), "\n")
    print(table3_zeroshot.run(setup=setup).to_text("{:.3f}"), "\n")
    print(table5_longbench.run(setup=setup).to_text("{:.3f}"), "\n")
    print(fig16_ablation.run(setup=setup).to_text("{:.3f}"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "tiny")
