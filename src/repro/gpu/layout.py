"""Tensor-core operand layout simulation (Figure 12).

INT8 tensor-core GEMM intrinsics require each thread to hold a strided slice
of the operand tile.  For same-width storage (W8A8) the ``ldmatrix``
instruction performs that permutation for free; when storage (INT4) and
compute (INT8) widths differ, ``ldmatrix`` distributes *bytes*, not elements,
so threads end up with the wrong data and the kernel falls back to per-segment
pointer arithmetic on CUDA cores.  QServe's *compute-aware weight reordering*
stores weights in exactly the order threads consume them, restoring one
128-bit load per thread per tile.

This module simulates the three layouts at element granularity so tests can
verify (a) the mismatch really occurs for W4A8 + ``ldmatrix``, (b) the
reordered layout gives every thread precisely the elements it needs, and
(c) the pointer-arithmetic counts behind the cost model's constants.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "TILE_ROWS",
    "TILE_COLS",
    "NUM_THREADS",
    "compute_thread_map",
    "ldmatrix_thread_map",
    "compute_aware_reorder",
    "inverse_reorder",
    "pointer_arithmetic_ops",
]

#: Tensor-core tile geometry used in the discussion (Figure 12): a 32x32
#: INT8 tile distributed over one warp of 32 threads.
TILE_ROWS = 32     # output channels
TILE_COLS = 32     # input channels
NUM_THREADS = 32
_SEGMENT = 4       # elements each thread consumes per fragment segment


def compute_thread_map(num_threads: int = NUM_THREADS,
                       rows: int = TILE_ROWS,
                       cols: int = TILE_COLS) -> Dict[int, List[Tuple[int, int]]]:
    """Elements (row, col) each thread needs for tensor-core *computation*.

    Mirrors the m16n8k32-style fragment layout sketched in Figure 12a: thread
    ``t`` works on output channel ``t // 4 (+ strides of 8)`` and on input
    channels ``(t % 4) * 4 .. +4`` plus the same channels shifted by 16.
    """
    mapping: Dict[int, List[Tuple[int, int]]] = {t: [] for t in range(num_threads)}
    for t in range(num_threads):
        base_row = t // 4
        base_col = (t % 4) * _SEGMENT
        for row in range(base_row, rows, 8):
            for col_block in (0, cols // 2):
                for c in range(_SEGMENT):
                    mapping[t].append((row, base_col + col_block + c))
    return mapping


def ldmatrix_thread_map(element_bits: int, num_threads: int = NUM_THREADS,
                        rows: int = TILE_ROWS,
                        cols: int = TILE_COLS) -> Dict[int, List[Tuple[int, int]]]:
    """Elements each thread *receives* from ``ldmatrix`` for a given storage width.

    ``ldmatrix`` permutes byte-granular fragments between threads so that,
    when the storage width equals the compute width (8-bit storage feeding
    INT8 tensor cores), every thread ends up holding exactly the elements the
    tensor-core fragment layout requires — i.e. the compute map of
    :func:`compute_thread_map` (Figure 12a).

    With 4-bit storage the instruction still moves the same *bytes*, but each
    byte now packs two elements: thread ``t`` receives the data that threads
    ``2t`` and ``2t+1`` need (half of each, since its registers hold the same
    number of bytes), which is the storage/compute mismatch of Figure 12b.
    """
    if element_bits not in (4, 8):
        raise ValueError("element_bits must be 4 or 8")
    compute = compute_thread_map(num_threads, rows, cols)
    if element_bits == 8:
        return {t: list(elems) for t, elems in compute.items()}
    mapping: Dict[int, List[Tuple[int, int]]] = {}
    for t in range(num_threads):
        first = compute[(2 * t) % num_threads]
        second = compute[(2 * t + 1) % num_threads]
        half = len(first) // 2
        mapping[t] = list(first[:half]) + list(second[:half])
    return mapping


def compute_aware_reorder(weight_tile: np.ndarray,
                          num_threads: int = NUM_THREADS) -> np.ndarray:
    """Reorder a ``[TILE_ROWS, TILE_COLS]`` tile into per-thread contiguous storage.

    The output is a ``[num_threads, elements_per_thread]`` array: row ``t``
    holds, contiguously and in consumption order, every element thread ``t``
    needs for computation (Figure 12c).  Because the storage order now *is*
    the compute order, a single 128-bit load per thread per fragment suffices
    and no per-segment pointer arithmetic is required.
    """
    weight_tile = np.asarray(weight_tile)
    if weight_tile.shape != (TILE_ROWS, TILE_COLS):
        raise ValueError(f"expected a {TILE_ROWS}x{TILE_COLS} tile")
    mapping = compute_thread_map(num_threads)
    per_thread = [np.array([weight_tile[r, c] for (r, c) in mapping[t]])
                  for t in range(num_threads)]
    return np.stack(per_thread, axis=0)


def inverse_reorder(reordered: np.ndarray,
                    num_threads: int = NUM_THREADS) -> np.ndarray:
    """Invert :func:`compute_aware_reorder`, recovering the original tile."""
    mapping = compute_thread_map(num_threads)
    tile = np.empty((TILE_ROWS, TILE_COLS), dtype=reordered.dtype)
    for t in range(num_threads):
        for idx, (r, c) in enumerate(mapping[t]):
            tile[r, c] = reordered[t, idx]
    return tile


def pointer_arithmetic_ops(layout: str, rows: int = TILE_ROWS,
                           cols: int = TILE_COLS) -> int:
    """Address computations a warp performs per tile under each layout.

    * ``"naive"`` — one address calculation per 4-element segment per thread
      (the strided access of Figure 12a done manually);
    * ``"ldmatrix"`` — one per 128-bit fragment load (only valid when storage
      and compute widths match);
    * ``"reordered"`` — one per 128-bit load, same as ``ldmatrix``, but valid
      for W4A8 as well.
    """
    segments = (rows * cols) // _SEGMENT
    fragments = (rows * cols) // 16  # 16 INT8 elements per 128-bit load
    table = {"naive": segments, "ldmatrix": fragments, "reordered": fragments}
    try:
        return table[layout]
    except KeyError:
        raise ValueError(f"unknown layout {layout!r}") from None
