"""Block-input rotation (Section 4.3.1).

Multiplying the block-input activations by an orthogonal matrix ``Q`` makes
every channel a linear combination of all channels, flattening the outlier
channels; because the transformation is unitary the linear layer output is
unchanged when the weight is rotated with the same matrix (``y = (xQ)(WQ)^T =
x W^T``).  QoQ (like QuaRot / QuIP#) uses a scaled Hadamard matrix, which is
both orthogonal and maximally incoherent.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hadamard_matrix", "random_orthogonal_matrix", "rotation_matrix_for"]


def hadamard_matrix(n: int, normalize: bool = True) -> np.ndarray:
    """The ``n x n`` Sylvester Hadamard matrix (``n`` must be a power of two).

    With ``normalize=True`` the matrix is scaled by ``1/sqrt(n)`` so it is
    orthonormal.
    """
    if n < 1 or (n & (n - 1)) != 0:
        raise ValueError(f"Hadamard size must be a power of two, got {n}")
    h = np.array([[1.0]])
    while h.shape[0] < n:
        h = np.block([[h, h], [h, -h]])
    if normalize:
        h = h / np.sqrt(n)
    return h


def random_orthogonal_matrix(n: int, seed: int = 0) -> np.ndarray:
    """A Haar-random orthogonal matrix (QR of a Gaussian matrix)."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    q, r = np.linalg.qr(a)
    # Fix the signs so the distribution is Haar.
    q *= np.sign(np.diag(r))
    return q


def rotation_matrix_for(n: int, seed: int = 0) -> np.ndarray:
    """Rotation used by the QoQ pipeline for an ``n``-channel activation.

    Uses the scaled Hadamard matrix when ``n`` is a power of two (the paper's
    choice) and falls back to a Haar-random orthogonal matrix otherwise (e.g.
    FFN intermediate sizes that are not powers of two).
    """
    if n >= 1 and (n & (n - 1)) == 0:
        return hadamard_matrix(n)
    return random_orthogonal_matrix(n, seed=seed)
