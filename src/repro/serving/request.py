"""Requests and workloads for the serving simulator.

Besides the paper's uniform 1024-in/512-out benchmark workload
(:func:`make_uniform_workload`), this module provides two generators for
stress-testing schedulers under realistic traffic:

* :func:`make_lognormal_workload` — ShareGPT-like lognormal mixes of prompt
  and output lengths, optionally with Poisson arrivals;
* :func:`make_bursty_workload` — on/off (Markov-modulated Poisson) arrivals:
  bursts of traffic at a high rate separated by idle gaps, the pattern that
  exposes head-of-line blocking and page-pressure preemption;
* :func:`make_shared_prefix_workload` — requests sharing a long system
  prompt / few-shot template ahead of a unique suffix;
* :func:`make_chat_workload` — multi-turn chat sessions whose prompts grow
  with the conversation history, the workload class prefix caching exists
  for.

Prompt *content* is modelled by ``Request.prompt_segments``: an optional
sequence of ``(content_id, length)`` pairs covering the prompt left to
right.  Equal content ids denote identical token spans, which is what the
prefix cache (:mod:`repro.serving.prefix_cache`) keys on; requests without
segments are treated as unique content and never share KV state.  Content
ids are drawn from a module-global counter, so two separate generator calls
never alias each other's content by accident.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "RequestState",
    "Request",
    "Workload",
    "make_uniform_workload",
    "make_lognormal_workload",
    "make_bursty_workload",
    "make_router_study_workload",
    "make_shared_prefix_workload",
    "make_chat_workload",
    "make_mixed_precision_workload",
]

#: Global source of fresh prompt-content ids (see module docstring).
_CONTENT_IDS = itertools.count(1)


class RequestState(str, enum.Enum):
    """Lifecycle of a request inside the serving engine.

    ``MIGRATING`` is the disaggregated-serving handoff state: the request's
    prefill finished on a prefill-role replica, its KV state is in flight to
    a decode replica, and it re-enters a scheduler's waiting queue there
    (with ``kv_ready`` set) until the transfer lands.
    """

    WAITING = "waiting"
    PREFILLING = "prefilling"
    DECODING = "decoding"
    PREEMPTED = "preempted"
    MIGRATING = "migrating"
    FINISHED = "finished"
    #: Terminal load-shedding state: the request was removed from the waiting
    #: queue by tier-aware admission (free tier under sustained pressure) and
    #: will never be served.  Only reachable with ``tier_admission`` on.
    DROPPED = "dropped"


@dataclass
class Request:
    """One generation request.

    The throughput benchmark of the paper uses 1024 prompt tokens and 512
    output tokens per request; :func:`make_uniform_workload` builds exactly
    that.

    Prefill progress is tracked explicitly (``prefilled`` out of
    ``prefill_target`` tokens) so chunked prefill can spread a prompt over
    several iterations, and so a preempted request can be re-prefilled over
    ``prompt_len + generated`` tokens on readmission (recompute-style
    preemption).
    """

    request_id: int
    prompt_len: int
    output_len: int
    arrival_time: float = 0.0
    #: Prompt content as ``(content_id, length)`` spans (see module
    #: docstring); ``None`` means unique, never-shared content.
    prompt_segments: Optional[Tuple[Tuple[int, int], ...]] = None
    state: RequestState = RequestState.WAITING
    generated: int = 0
    prefill_done_time: Optional[float] = None
    finish_time: Optional[float] = None
    # Prefill progress within the current residency (set at admission).
    prefilled: int = 0
    prefill_target: int = 0
    #: Prompt tokens served from the prefix cache this residency (their
    #: prefill is skipped) and the shared KV pages currently referenced.
    cached_tokens: int = 0
    shared_kv_pages: int = 0
    # Latency bookkeeping.
    first_token_time: Optional[float] = None
    admitted_time: Optional[float] = None
    preemptions: int = 0
    #: Disaggregated serving: the request's KV state arrived via transfer, so
    #: admission adopts the pages and skips prefill entirely.  Cleared on
    #: preemption — reclaimed transferred pages must be recomputed locally.
    kv_ready: bool = False
    #: Simulation time the transferred KV state lands on the target replica;
    #: admission may not precede it.  ``None`` for never-migrated requests.
    migration_ready_time: Optional[float] = None
    #: Prefill→decode handoffs this request went through, and the exposed
    #: (non-overlapped) KV-transfer delay they added to its critical path.
    migrations: int = 0
    transfer_delay_s: float = 0.0
    #: Speculative decoding: draft-and-verify iterations this request took
    #: part in, draft tokens proposed for it, and how many survived
    #: verification.  All zero when speculation is off (or the request only
    #: ever decoded plainly, e.g. a single-token output).
    spec_steps: int = 0
    draft_proposed: int = 0
    draft_accepted: int = 0
    #: Cached prefix tokens that hit blocks held at the demoted 4-bit tier
    #: this residency; the engine charges one dequantization pass over them
    #: when the request's prefill starts.  Zero whenever KV demotion is off.
    demoted_hit_tokens: int = 0
    #: Quality floor: minimum ``min(weight_bits, kv_bits)`` of the system
    #: allowed to serve this request.  ``0.0`` accepts any precision; a
    #: latency-/quality-sensitive request might demand ``16.0`` (FP16-only).
    precision_floor_bits: float = 0.0
    #: ``min_precision_bits`` of the system that admitted the request;
    #: stamped at admission, joins the SLO definition as a quality check.
    served_precision_bits: float = 0.0
    #: Multi-tenancy: the tenant that issued the request and its SLO tier
    #: (``"paid"`` or ``"free"``).  Ignored entirely unless the scheduler is
    #: built with ``tier_admission`` on; the default tier is ``"paid"`` so
    #: untagged workloads behave identically under tiered admission.
    tenant: Optional[str] = None
    tier: str = "paid"
    #: Model name from a replayed trace (informational; single-model engines
    #: serve every request with their own model regardless).
    model: Optional[str] = None
    #: Simulation time tier-aware admission dropped the request (load
    #: shedding); ``None`` for requests that were never dropped.
    drop_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.prompt_len <= 0 or self.output_len <= 0:
            raise ValueError("prompt_len and output_len must be positive")
        if self.prompt_segments is not None:
            self.prompt_segments = tuple(
                (int(cid), int(length)) for cid, length in self.prompt_segments)
            if sum(length for _, length in self.prompt_segments) != self.prompt_len:
                raise ValueError("prompt_segments lengths must sum to prompt_len")
        if self.prefill_target <= 0:
            self.prefill_target = self.prompt_len

    @property
    def context_len(self) -> int:
        """Tokens currently occupying KV cache (prompt + generated)."""
        return self.prompt_len + self.generated

    @property
    def available_time(self) -> float:
        """Earliest time a scheduler may admit this request.

        The arrival time, except for migrated requests, which additionally
        wait for their KV transfer to land on the target replica.
        """
        if self.migration_ready_time is None:
            return self.arrival_time
        return max(self.arrival_time, self.migration_ready_time)

    @property
    def prefill_remaining(self) -> int:
        """Prompt (or recompute) tokens still to prefill this residency."""
        return max(0, self.prefill_target - self.prefilled)

    @property
    def finished(self) -> bool:
        return self.generated >= self.output_len

    def copy_fresh(self) -> "Request":
        """A pristine copy (same id/lengths/arrival/content, no progress)."""
        return Request(request_id=self.request_id, prompt_len=self.prompt_len,
                       output_len=self.output_len, arrival_time=self.arrival_time,
                       prompt_segments=self.prompt_segments,
                       precision_floor_bits=self.precision_floor_bits,
                       tenant=self.tenant, tier=self.tier, model=self.model)


@dataclass
class Workload:
    """A batch of requests plus summary helpers."""

    requests: List[Request] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def total_output_tokens(self) -> int:
        return sum(r.output_len for r in self.requests)

    @property
    def total_prompt_tokens(self) -> int:
        return sum(r.prompt_len for r in self.requests)

    def copy_fresh(self) -> "Workload":
        """A pristine copy of the workload.

        ``ServingEngine.serve`` mutates request state in place; use this to
        run the same workload under several scheduling configurations.
        """
        return Workload(requests=[r.copy_fresh() for r in self.requests])


def make_uniform_workload(num_requests: int, prompt_len: int = 1024,
                          output_len: int = 512,
                          arrival_rate: Optional[float] = None,
                          seed: int = 0) -> Workload:
    """Build the paper's benchmark workload.

    With ``arrival_rate=None`` every request is available at time zero (the
    "maximum achievable throughput" setting); otherwise arrivals follow a
    Poisson process with the given rate (requests/second).
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    arrivals = np.zeros(num_requests)
    if arrival_rate is not None:
        rng = np.random.default_rng(seed)
        arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=num_requests))
    requests = [
        Request(request_id=i, prompt_len=prompt_len, output_len=output_len,
                arrival_time=float(arrivals[i]))
        for i in range(num_requests)
    ]
    return Workload(requests=requests)


#: ShareGPT-like length-distribution defaults, shared by
#: :func:`make_lognormal_workload` and :func:`make_bursty_workload`:
#: (mean_log, sigma_log, min_len, max_len) of the clipped lognormal.
_PROMPT_LOGNORMAL = (6.0, 0.8, 4, 3072)
_OUTPUT_LOGNORMAL = (5.0, 0.9, 4, 1024)


def _lognormal_lengths(rng: np.random.Generator, n: int, mean_log: float,
                       sigma_log: float, lo: int, hi: int) -> np.ndarray:
    lengths = rng.lognormal(mean=mean_log, sigma=sigma_log, size=n)
    return np.clip(np.round(lengths), lo, hi).astype(np.int64)


def make_lognormal_workload(num_requests: int,
                            prompt_mean_log: float = _PROMPT_LOGNORMAL[0],
                            prompt_sigma_log: float = _PROMPT_LOGNORMAL[1],
                            output_mean_log: float = _OUTPUT_LOGNORMAL[0],
                            output_sigma_log: float = _OUTPUT_LOGNORMAL[1],
                            min_len: int = _PROMPT_LOGNORMAL[2],
                            max_prompt_len: int = _PROMPT_LOGNORMAL[3],
                            max_output_len: int = _OUTPUT_LOGNORMAL[3],
                            arrival_rate: Optional[float] = None,
                            seed: int = 0) -> Workload:
    """ShareGPT-like workload: lognormal prompt and output length mixes.

    The defaults give median prompts of ~400 tokens and median outputs of
    ~150 tokens with heavy right tails, roughly the shape of the ShareGPT
    conversation traces used by vLLM's serving benchmarks.  Arrivals are
    Poisson when ``arrival_rate`` is set, otherwise all at time zero.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    rng = np.random.default_rng(seed)
    prompts = _lognormal_lengths(rng, num_requests, prompt_mean_log,
                                 prompt_sigma_log, min_len, max_prompt_len)
    outputs = _lognormal_lengths(rng, num_requests, output_mean_log,
                                 output_sigma_log, min_len, max_output_len)
    arrivals = np.zeros(num_requests)
    if arrival_rate is not None:
        arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=num_requests))
    requests = [
        Request(request_id=i, prompt_len=int(prompts[i]),
                output_len=int(outputs[i]), arrival_time=float(arrivals[i]))
        for i in range(num_requests)
    ]
    return Workload(requests=requests)


def make_bursty_workload(num_requests: int,
                         burst_rate: float = 8.0,
                         mean_burst_s: float = 4.0,
                         mean_idle_s: float = 8.0,
                         prompt_len: int = 1024,
                         output_len: int = 512,
                         lognormal_lengths: bool = False,
                         seed: int = 0) -> Workload:
    """On/off bursty arrivals (Markov-modulated Poisson process).

    Traffic alternates between ON periods (exponential duration with mean
    ``mean_burst_s``, Poisson arrivals at ``burst_rate`` requests/s) and
    silent OFF periods (mean ``mean_idle_s``).  The long-run average rate is
    ``burst_rate * mean_burst_s / (mean_burst_s + mean_idle_s)``, but the
    instantaneous rate during a burst is much higher — exactly the pattern
    that overflows KV-cache pages and stresses admission/preemption policies.

    With ``lognormal_lengths=True`` request lengths follow the
    :func:`make_lognormal_workload` defaults instead of being uniform.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if burst_rate <= 0 or mean_burst_s <= 0 or mean_idle_s < 0:
        raise ValueError("burst_rate/mean_burst_s must be positive, "
                         "mean_idle_s non-negative")
    rng = np.random.default_rng(seed)
    arrivals: List[float] = []
    t = 0.0
    while len(arrivals) < num_requests:
        burst_end = t + rng.exponential(mean_burst_s)
        while len(arrivals) < num_requests:
            t += rng.exponential(1.0 / burst_rate)
            if t > burst_end:
                break
            arrivals.append(t)
        t = burst_end + rng.exponential(mean_idle_s) if mean_idle_s > 0 else burst_end
    arrivals_arr = np.asarray(arrivals[:num_requests])

    if lognormal_lengths:
        prompts = _lognormal_lengths(rng, num_requests, *_PROMPT_LOGNORMAL)
        outputs = _lognormal_lengths(rng, num_requests, *_OUTPUT_LOGNORMAL)
    else:
        prompts = np.full(num_requests, prompt_len, dtype=np.int64)
        outputs = np.full(num_requests, output_len, dtype=np.int64)
    requests = [
        Request(request_id=i, prompt_len=int(prompts[i]),
                output_len=int(outputs[i]), arrival_time=float(arrivals_arr[i]))
        for i in range(num_requests)
    ]
    return Workload(requests=requests)


def make_router_study_workload(num_requests: int = 120, seed: int = 1) -> Workload:
    """The canonical bursty heavy-tailed workload of the cluster router study.

    One fixed parameterisation of :func:`make_bursty_workload` shared by the
    router A/B benchmark (``benchmarks/bench_cluster_scaling.py``), the
    cluster example and the regression test asserting that the
    least-outstanding router beats round-robin on p95 TTFT — so all three
    exercise, and stay honest about, the same traffic.
    """
    return make_bursty_workload(num_requests, burst_rate=24.0, mean_burst_s=6.0,
                                mean_idle_s=6.0, lognormal_lengths=True,
                                seed=seed)


def make_shared_prefix_workload(num_requests: int,
                                shared_prefix_len: int = 512,
                                unique_len: int = 128,
                                output_len: int = 64,
                                num_prefix_groups: int = 1,
                                arrival_rate: Optional[float] = None,
                                seed: int = 0) -> Workload:
    """Requests sharing a long common prefix ahead of a unique suffix.

    Models system-prompt / few-shot-template traffic: requests are assigned
    round-robin to ``num_prefix_groups`` distinct shared prefixes of
    ``shared_prefix_len`` tokens, each followed by a per-request unique span
    of ``unique_len`` tokens.  With prefix caching on, every group's prefix
    is prefilled once and then served from cache.  Arrivals are Poisson at
    ``arrival_rate`` (requests/second) or all at time zero.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if num_prefix_groups <= 0:
        raise ValueError("num_prefix_groups must be positive")
    if shared_prefix_len <= 0 or unique_len <= 0:
        raise ValueError("shared_prefix_len and unique_len must be positive")
    rng = np.random.default_rng(seed)
    arrivals = np.zeros(num_requests)
    if arrival_rate is not None:
        arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=num_requests))
    group_ids = [next(_CONTENT_IDS) for _ in range(num_prefix_groups)]
    requests = [
        Request(request_id=i,
                prompt_len=shared_prefix_len + unique_len,
                output_len=output_len,
                arrival_time=float(arrivals[i]),
                prompt_segments=((group_ids[i % num_prefix_groups],
                                  shared_prefix_len),
                                 (next(_CONTENT_IDS), unique_len)))
        for i in range(num_requests)
    ]
    return Workload(requests=requests)


def make_chat_workload(num_sessions: int = 8,
                       turns_per_session: int = 6,
                       system_prompt_len: int = 512,
                       user_len: int = 64,
                       assistant_len: int = 128,
                       think_time_s: float = 10.0,
                       session_rate: Optional[float] = None,
                       shared_system_prompt: bool = True,
                       seed: int = 0) -> Workload:
    """Multi-turn chat sessions with growing conversation histories.

    Each session issues ``turns_per_session`` requests.  Turn ``t``'s prompt
    is the full history — system prompt, every earlier user message and
    assistant reply — plus the new user message, so prompts grow linearly
    with the turn index while all but the latest assistant reply and user
    message were already prefilled by the previous turn.  With
    ``shared_system_prompt`` every session opens with the *same* system
    prompt (cross-session sharing); otherwise each session's is unique.

    Per-turn user/assistant lengths are uniform in ``[len // 2, 2 * len]``
    (seeded), the assistant reply length doubling as the turn's
    ``output_len`` — the reply the engine generates is exactly the content
    the next prompt embeds.  Session start times are Poisson at
    ``session_rate`` (sessions/second) or all zero; successive turns are
    separated by an exponential think time with mean ``think_time_s``.  The
    traffic is open-loop: a turn may arrive while the previous one is still
    decoding, and generated (decode-time) KV state is not cached, so the
    cache-hit frontier of turn ``t + 1`` is turn ``t``'s *prompt*, not its
    reply.
    """
    if num_sessions <= 0 or turns_per_session <= 0:
        raise ValueError("num_sessions and turns_per_session must be positive")
    if system_prompt_len <= 0 or user_len <= 0 or assistant_len <= 0:
        raise ValueError("segment lengths must be positive")
    if think_time_s < 0:
        raise ValueError("think_time_s must be non-negative")
    rng = np.random.default_rng(seed)
    starts = np.zeros(num_sessions)
    if session_rate is not None:
        starts = np.cumsum(rng.exponential(1.0 / session_rate, size=num_sessions))
    shared_system_id = next(_CONTENT_IDS)
    requests: List[Request] = []
    for session in range(num_sessions):
        system_id = shared_system_id if shared_system_prompt else next(_CONTENT_IDS)
        history: List[Tuple[int, int]] = [(system_id, system_prompt_len)]
        now = float(starts[session])
        for _ in range(turns_per_session):
            u_len = int(rng.integers(max(1, user_len // 2), 2 * user_len + 1))
            a_len = int(rng.integers(max(1, assistant_len // 2),
                                     2 * assistant_len + 1))
            user_segment = (next(_CONTENT_IDS), u_len)
            segments = tuple(history + [user_segment])
            requests.append(Request(
                request_id=len(requests),
                prompt_len=sum(length for _, length in segments),
                output_len=a_len,
                arrival_time=now,
                prompt_segments=segments))
            history.extend([user_segment, (next(_CONTENT_IDS), a_len)])
            now += float(rng.exponential(think_time_s)) if think_time_s > 0 else 0.0
    return Workload(requests=requests)


def make_mixed_precision_workload(num_requests: int = 200,
                                  interactive_fraction: float = 0.35,
                                  interactive_prompt_len: int = 128,
                                  interactive_output_len: int = 64,
                                  batch_prompt_len: int = 1024,
                                  batch_output_len: int = 512,
                                  arrival_rate: float = 4.0,
                                  precision_floor_bits: float = 16.0,
                                  seed: int = 0) -> Workload:
    """Two-tier traffic for precision-aware serving studies.

    A fraction of the requests is *interactive quality-tier* traffic — short
    prompts and outputs, tagged with ``precision_floor_bits`` so only a
    full-precision replica counts as serving them correctly (think paying
    customers whose product team has not signed off on quantized outputs).
    The remainder is *batch throughput* traffic — the paper's 1024/512
    benchmark shape, happy to be served at any precision.  Tiers are drawn
    i.i.d. per request and share one Poisson arrival process, so a router
    sees them interleaved, not phased.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if not 0.0 <= interactive_fraction <= 1.0:
        raise ValueError("interactive_fraction must be in [0, 1]")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=num_requests))
    interactive = rng.random(num_requests) < interactive_fraction
    requests: List[Request] = []
    for i in range(num_requests):
        if interactive[i]:
            requests.append(Request(
                request_id=i, prompt_len=interactive_prompt_len,
                output_len=interactive_output_len,
                arrival_time=float(arrivals[i]),
                precision_floor_bits=precision_floor_bits))
        else:
            requests.append(Request(
                request_id=i, prompt_len=batch_prompt_len,
                output_len=batch_output_len,
                arrival_time=float(arrivals[i])))
    return Workload(requests=requests)
