"""Speculative decoding walkthrough.

Decode is memory-bound: every iteration re-reads all the weights to emit one
token per sequence, so the serialized iteration count — not FLOPs — bounds
inter-token latency.  Speculative decoding breaks that bound: a small draft
model proposes ``k`` tokens, the target verifies all ``k + 1`` positions in
one batched step (priced through the chunked-prefill GEMM path plus a
full-width LM head), and the accepted prefix commits at once.  Everything is
modeled from first principles through the GPU cost model; only *acceptance*
— a property of the traffic, not the hardware — is sampled from seeded
per-request streams under a workload profile.

Three sections on a Llama-2-7B target (QServe W4A8KV4, one A100):

1. **Lookahead sweep** — k = 2/4/8 with a llama-160m draft on predictable
   (low-entropy) traffic, against the non-speculative baseline: TPOT drops
   ~3x because one verification step commits ~4 tokens.
2. **Draft size** — llama-68m vs llama-160m vs tinyllama-1.1b at k = 4: a
   bigger draft proposes no better here (acceptance is the workload's), so
   its extra decode cost and KV/weight reservation are pure overhead.
3. **Acceptance profiles** — the same stack across code/chat/high-entropy
   traffic at a compute-bound batch: speedup degrades gracefully as
   acceptance falls, deep static lookahead goes *negative* on hard traffic,
   and acceptance-aware adaptive lookahead wins it back.

Run with:  python examples/speculative_decoding.py [model-name]
"""

import sys

from repro.experiments.runner import format_table
from repro.gpu import A100
from repro.model import get_config
from repro.serving import (
    SCHEDULING_PRESETS,
    SYSTEM_PRESETS,
    ServingEngine,
    SpeculativeConfig,
    make_uniform_workload,
)


def _engine(model_name):
    return ServingEngine(get_config(model_name), A100,
                         SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                         max_seq_len=1024)


def _serve(engine, workload, max_num_seqs, spec=None):
    return engine.serve(workload.copy_fresh(), max_num_seqs=max_num_seqs,
                        scheduling=SCHEDULING_PRESETS["chunked"],
                        speculative=spec)


def _rows(results):
    return [[name,
             round(r.generation_throughput, 1),
             round(r.metrics.tpot.mean * 1e3, 2),
             round(r.metrics.tpot.p95 * 1e3, 2),
             round(r.tokens_per_iteration, 2),
             f"{r.acceptance_rate * 100:.1f}",
             f"{r.speculation_speedup:.2f}"]
            for name, r in results.items()]


_HEADER = ["Configuration", "Tok/s", "TPOT mean (ms)", "TPOT p95 (ms)",
           "Tok/iter", "Accept (%)", "Speedup"]


def lookahead_study(model_name: str) -> None:
    engine = _engine(model_name)
    workload = make_uniform_workload(24, prompt_len=512, output_len=256)
    draft = get_config("llama-160m")
    results = {"baseline (no speculation)": _serve(engine, workload, 8)}
    for k in (2, 4, 8):
        spec = SpeculativeConfig(draft, lookahead=k, profile="low-entropy")
        results[f"k={k}, llama-160m draft"] = _serve(engine, workload, 8, spec)
    print(f"Lookahead sweep for {model_name} on A100 (QServe W4A8KV4, "
          f"batch 8, low-entropy traffic):\n")
    print(format_table(_HEADER, _rows(results)))
    print("\nOne verification step commits ~4 tokens at this acceptance, so "
          "mean TPOT falls ~3x.\nDeeper lookahead has diminishing returns: "
          "late draft positions are accepted less\noften but still cost "
          "draft decode steps.")


def draft_size_study(model_name: str) -> None:
    engine = _engine(model_name)
    workload = make_uniform_workload(24, prompt_len=512, output_len=256)
    results = {}
    for name in ("llama-68m", "llama-160m", "tinyllama-1.1b"):
        spec = SpeculativeConfig(get_config(name), lookahead=4,
                                 profile="low-entropy")
        results[f"{name} draft"] = _serve(engine, workload, 8, spec)
    print(f"\nDraft size at k=4 (acceptance fixed by the workload profile):\n")
    print(format_table(_HEADER, _rows(results)))
    print("\nAcceptance is a property of the traffic here, so the smallest "
          "draft wins: the\nbigger drafts pay more per proposal step and "
          "reserve more of the GPU's KV budget\nfor their weights and shadow "
          "KV cache.  (In reality a bigger draft buys some\nacceptance back "
          "— model that by pairing it with a stronger profile.)")


def acceptance_study(model_name: str) -> None:
    engine = _engine(model_name)
    workload = make_uniform_workload(48, prompt_len=512, output_len=256)
    draft = get_config("llama-160m")
    results = {"baseline (no speculation)": _serve(engine, workload, 48)}
    for profile in ("code", "chat", "high-entropy"):
        spec = SpeculativeConfig(draft, lookahead=4, profile=profile)
        results[f"{profile}, k=4"] = _serve(engine, workload, 48, spec)
    results["high-entropy, k=8 static"] = _serve(
        engine, workload, 48,
        SpeculativeConfig(draft, lookahead=8, profile="high-entropy"))
    results["high-entropy, k=8 adaptive"] = _serve(
        engine, workload, 48,
        SpeculativeConfig(draft, lookahead=8, adaptive=True,
                          profile="high-entropy"))
    print(f"\nAcceptance profiles at batch 48 (compute-bound — verification "
          f"FLOPs now cost):\n")
    print(format_table(_HEADER, _rows(results)))
    print("\nSpeedup degrades gracefully as traffic gets harder to draft.  "
          "Over-speculating\n(k=8 static on high-entropy) is slower than not "
          "speculating at all — every\nrejected token still paid "
          "verification FLOPs — while the adaptive lookahead\nshrinks k on "
          "requests whose drafts keep missing and recovers the win.")


def main(model_name: str = "llama-2-7b") -> None:
    lookahead_study(model_name)
    draft_size_study(model_name)
    acceptance_study(model_name)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "llama-2-7b")
