"""QServe serving-system simulator.

The efficiency results of the paper (Table 4, Figures 15/17) measure the
*maximum achievable generation throughput* of a serving system under a fixed
device-memory budget, with 1024-token prompts and 512-token outputs.  This
package reproduces that measurement as a discrete, event-driven simulation,
and extends it with the latency side of serving (TTFT/TPOT percentiles, SLO
goodput) under pluggable scheduling policies:

* :mod:`repro.serving.precision` — serving-system presets (TensorRT-LLM FP16 /
  W8A8 / W4A16, Atom, QuaRot, QServe per-channel & per-group) mapping onto the
  GPU cost model's GEMM/attention kernels;
* :mod:`repro.serving.request` — request and workload definitions, including
  ShareGPT-like lognormal and bursty on/off workload generators;
* :mod:`repro.serving.cost_cache` — per-engine memoization of the pure
  cost-model latencies, keyed on batch shape (bitwise-identical hits);
* :mod:`repro.serving.kv_cache_manager` — paged KV cache with per-head scale
  storage, whole-request page reclamation, a ref-counted shared-page pool and
  per-block precision tiers (4-bit demotion of cold shared blocks);
* :mod:`repro.serving.prefix_cache` — radix-tree prefix sharing: prompt
  prefixes already resident in the KV cache skip prefill, with
  demote-before-evict and LRU eviction of unreferenced blocks under page
  pressure;
* :mod:`repro.serving.policies` — scheduler policies (FCFS, strict-FCFS,
  SJF), iteration planners (stall prefill, chunked prefill) and
  :class:`SchedulingConfig` presets;
* :mod:`repro.serving.scheduler` — in-flight (continuous) batching scheduler
  with optimistic admission and preempt-and-recompute under page pressure;
* :mod:`repro.serving.metrics` — per-request TTFT/TPOT/E2E latency with
  p50/p95/p99 summaries and SLO goodput;
* :mod:`repro.serving.telemetry` — default-off lifecycle tracing: request
  spans, per-iteration records, sampled time series, a unified counter
  registry with a Prometheus-style snapshot, Chrome trace-event export
  (Perfetto-loadable) and SLO phase attribution;
* :mod:`repro.serving.engine` — per-iteration latency from the GPU cost model
  plus the event-driven serving loop (whole-run ``serve`` and the
  iteration-level :class:`EngineStepper`);
* :mod:`repro.serving.parallel` — tensor-parallel sharding + all-reduce cost
  model (:class:`ParallelConfig`);
* :mod:`repro.serving.speculative` — speculative decoding: draft-model cost
  modeling, seeded per-request acceptance sampling under workload profiles,
  acceptance-aware adaptive lookahead (:class:`SpeculativeConfig`);
* :mod:`repro.serving.traffic` — production traffic modeling: diurnal and
  flash-crowd arrival processes, multi-tenant assignment with paid/free SLO
  tiers, and a JSONL trace format for replaying recorded request logs;
* :mod:`repro.serving.autoscaler` — reactive fleet autoscaling: queue-depth
  and SLO-attainment signals with cooldown hysteresis, priced cold starts
  (weights over the host link), and provisioned GPU-seconds accounting;
* :mod:`repro.serving.multiplex` — multi-model multiplexing: per-replica
  model residency accounting against HBM (weights + workspace next to the
  statically carved per-model KV pools), LRU weight swapping priced like
  autoscaler cold starts, and per-model swap/residency reporting;
* :mod:`repro.serving.cluster` — multi-replica cluster simulation behind
  pluggable routers (round-robin, least-outstanding, shortest-queue,
  prefix-affinity, disaggregated, precision-aware, model-aware), including
  role-specialised prefill/decode replicas with priced KV-state migration,
  heterogeneous mixed-precision fleets (per-replica system presets,
  cross-precision transfer repricing), autoscaled fleets and multiplexed
  multi-model fleets with swap-priced warm-first routing;
* :mod:`repro.serving.throughput` — memory-budgeted maximum-batch search,
  throughput measurement and tensor-parallel sweeps.
"""

from repro.serving.precision import (
    SystemConfig,
    SYSTEM_PRESETS,
    get_system,
    validate_presets,
    DEMOTED_KV_BITS,
    DYNAMIC_KV_PARAM_BYTES,
)
from repro.serving.request import (
    Request,
    RequestState,
    Workload,
    make_uniform_workload,
    make_lognormal_workload,
    make_bursty_workload,
    make_router_study_workload,
    make_shared_prefix_workload,
    make_chat_workload,
    make_mixed_precision_workload,
)
from repro.serving.traffic import (
    TIERS,
    TenantSpec,
    make_tenant_pool,
    assign_tenants,
    make_diurnal_workload,
    make_flash_crowd_workload,
    make_multi_model_workload,
    load_trace,
    save_trace,
)
from repro.serving.autoscaler import (
    AutoscalerConfig,
    FleetSnapshot,
    ScalingEvent,
    ReactiveAutoscaler,
    AutoscaleReport,
    weight_transfer_s,
)
from repro.serving.multiplex import (
    MultiplexConfig,
    ModelResidency,
    ResidencySnapshot,
    MultiplexReport,
)
from repro.serving.cost_cache import CostModelCache, cache_enabled_default
from repro.serving.kv_cache_manager import PagedKVCacheManager, PageAllocationError
from repro.serving.prefix_cache import (
    PrefixCache,
    PrefixCacheStats,
    prompt_block_keys,
)
from repro.serving.policies import (
    SchedulerPolicy,
    FCFSPolicy,
    StrictFCFSPolicy,
    ShortestJobFirstPolicy,
    CacheAwarePolicy,
    POLICIES,
    get_policy,
    IterationPlan,
    IterationPlanner,
    StallPrefillPlanner,
    ChunkedPrefillPlanner,
    SchedulingConfig,
    SCHEDULING_PRESETS,
    LEGACY_SCHEDULING,
)
from repro.serving.metrics import RequestMetrics, LatencySummary, ServingMetrics
from repro.serving.telemetry import (
    TelemetryConfig,
    CounterRegistry,
    collect_counters,
    Tracer,
    PHASES,
    chrome_trace,
    write_chrome_trace,
    trace_phase_records,
    PhaseRecord,
    attribute_slo,
    SLOAttribution,
)
from repro.serving.scheduler import ContinuousBatchingScheduler
from repro.serving.parallel import ParallelConfig
from repro.serving.speculative import (
    AcceptanceProfile,
    ACCEPTANCE_PROFILES,
    get_acceptance_profile,
    AcceptanceSampler,
    SpeculativeConfig,
    SpeculationStats,
    SpeculativeDecoder,
)
from repro.serving.engine import (
    EngineStepper,
    ServingEngine,
    ServingResult,
    StepBreakdown,
)
from repro.serving.cluster import (
    Router,
    RoundRobinRouter,
    LeastOutstandingRouter,
    ShortestQueueRouter,
    PrefixAffinityRouter,
    DisaggregatedRouter,
    PrecisionAwareRouter,
    ModelAwareRouter,
    ROUTERS,
    get_router,
    REPLICA_ROLES,
    ClusterResult,
    ClusterEngine,
)
from repro.serving.throughput import (
    ThroughputResult,
    max_achievable_batch,
    measure_throughput,
    max_achievable_throughput,
    tp_sweep,
)

__all__ = [
    "SystemConfig", "SYSTEM_PRESETS", "get_system", "validate_presets",
    "DEMOTED_KV_BITS", "DYNAMIC_KV_PARAM_BYTES",
    "Request", "RequestState", "Workload", "make_uniform_workload",
    "make_lognormal_workload", "make_bursty_workload",
    "make_router_study_workload", "make_shared_prefix_workload",
    "make_chat_workload", "make_mixed_precision_workload",
    "TIERS", "TenantSpec", "make_tenant_pool", "assign_tenants",
    "make_diurnal_workload", "make_flash_crowd_workload",
    "make_multi_model_workload", "load_trace", "save_trace",
    "AutoscalerConfig", "FleetSnapshot", "ScalingEvent",
    "ReactiveAutoscaler", "AutoscaleReport", "weight_transfer_s",
    "MultiplexConfig", "ModelResidency", "ResidencySnapshot",
    "MultiplexReport",
    "CostModelCache", "cache_enabled_default",
    "PagedKVCacheManager", "PageAllocationError",
    "PrefixCache", "PrefixCacheStats", "prompt_block_keys",
    "SchedulerPolicy", "FCFSPolicy", "StrictFCFSPolicy",
    "ShortestJobFirstPolicy", "CacheAwarePolicy", "POLICIES", "get_policy",
    "IterationPlan", "IterationPlanner", "StallPrefillPlanner",
    "ChunkedPrefillPlanner", "SchedulingConfig", "SCHEDULING_PRESETS",
    "LEGACY_SCHEDULING",
    "RequestMetrics", "LatencySummary", "ServingMetrics",
    "TelemetryConfig", "CounterRegistry", "collect_counters", "Tracer",
    "PHASES", "chrome_trace", "write_chrome_trace", "trace_phase_records",
    "PhaseRecord", "attribute_slo", "SLOAttribution",
    "ContinuousBatchingScheduler",
    "ParallelConfig",
    "AcceptanceProfile", "ACCEPTANCE_PROFILES", "get_acceptance_profile",
    "AcceptanceSampler", "SpeculativeConfig", "SpeculationStats",
    "SpeculativeDecoder",
    "EngineStepper", "ServingEngine", "ServingResult", "StepBreakdown",
    "Router", "RoundRobinRouter", "LeastOutstandingRouter",
    "ShortestQueueRouter", "PrefixAffinityRouter", "DisaggregatedRouter",
    "PrecisionAwareRouter", "ModelAwareRouter", "ROUTERS", "get_router",
    "REPLICA_ROLES",
    "ClusterResult", "ClusterEngine",
    "ThroughputResult", "max_achievable_batch", "measure_throughput",
    "max_achievable_throughput", "tp_sweep",
]
