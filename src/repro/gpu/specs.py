"""Device models for the GPUs evaluated in the paper (A100-80G, L40S-48G).

Peak numbers follow the vendor datasheets and the constants quoted in the
paper (footnote 1: A100 has 312/624/1248 TOPS FP16/INT8/INT4 tensor-core
throughput and 2 TB/s of DRAM bandwidth; Section 3.2: FP32 CUDA-core peak is
~2% of INT4 tensor-core peak; Section 6.3: "L40S has stronger CUDA cores").
``efficiency`` factors translate peak numbers into the sustained fractions a
tuned kernel reaches, so absolute latencies land in a realistic range — the
experiments only rely on ratios, which the efficiencies mostly cancel out of.

:class:`InterconnectSpec` extends the device model with the GPU-to-GPU links
that tensor parallelism runs over (NVLink on SXM boards, plain PCIe on the
L40S), parameterised by per-direction bandwidth and per-message latency —
the two quantities a ring all-reduce's cost decomposes into.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "GPUSpec", "A100", "L40S", "get_gpu", "GPU_REGISTRY",
    "InterconnectSpec", "NVLINK", "PCIE_GEN4", "get_interconnect",
    "INTERCONNECT_REGISTRY",
]


@dataclass(frozen=True)
class GPUSpec:
    """Throughput/bandwidth model of one GPU.

    All compute rates are in tera-operations per second (1 MAC = 2 ops),
    bandwidth in GB/s and memory in GiB.
    """

    name: str
    fp16_tensor_tops: float
    int8_tensor_tops: float
    int4_tensor_tops: float
    fp32_cuda_tflops: float
    fp16_cuda_tflops: float
    int32_alu_tops: float
    memory_bandwidth_gbps: float
    memory_gib: float
    price_kusd: float
    compute_efficiency: float = 0.85
    bandwidth_efficiency: float = 0.65

    def tensor_core_tops(self, dtype: str) -> float:
        """Peak tensor-core throughput for a compute dtype."""
        table = {
            "fp16": self.fp16_tensor_tops,
            "int8": self.int8_tensor_tops,
            "int4": self.int4_tensor_tops,
        }
        try:
            return table[dtype]
        except KeyError:
            raise ValueError(f"unknown tensor-core dtype {dtype!r}") from None

    def cuda_core_tops(self, dtype: str) -> float:
        """Peak CUDA-core throughput for a compute dtype."""
        table = {
            "fp32": self.fp32_cuda_tflops,
            "fp16": self.fp16_cuda_tflops,
            "int32": self.int32_alu_tops,
        }
        try:
            return table[dtype]
        except KeyError:
            raise ValueError(f"unknown CUDA-core dtype {dtype!r}") from None

    @property
    def effective_bandwidth_gbps(self) -> float:
        return self.memory_bandwidth_gbps * self.bandwidth_efficiency

    @property
    def memory_bytes(self) -> float:
        return self.memory_gib * (1 << 30)

    def cuda_core_roofline_turning_point(self, dtype: str = "fp32") -> float:
        """Ops/byte at which CUDA-core work becomes compute bound (Section 5.3)."""
        return (self.cuda_core_tops(dtype) * 1e12) / (self.memory_bandwidth_gbps * 1e9)


#: NVIDIA A100-SXM4-80GB.
A100 = GPUSpec(
    name="A100",
    fp16_tensor_tops=312.0,
    int8_tensor_tops=624.0,
    int4_tensor_tops=1248.0,
    fp32_cuda_tflops=19.5,
    fp16_cuda_tflops=78.0,
    int32_alu_tops=19.5,
    memory_bandwidth_gbps=2039.0,
    memory_gib=80.0,
    price_kusd=25.0,
)

#: NVIDIA L40S-48GB (Ada).  Weaker tensor cores and HBM than A100 but
#: comparatively strong CUDA cores, which is why per-group dequantization is
#: affordable there (Section 6.3).
L40S = GPUSpec(
    name="L40S",
    fp16_tensor_tops=362.0,
    int8_tensor_tops=733.0,
    int4_tensor_tops=1466.0,
    fp32_cuda_tflops=91.6,
    fp16_cuda_tflops=91.6,
    int32_alu_tops=91.6,
    memory_bandwidth_gbps=864.0,
    memory_gib=48.0,
    price_kusd=8.0,
)

GPU_REGISTRY = {"A100": A100, "L40S": L40S, "a100": A100, "l40s": L40S}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by name (case-insensitive)."""
    try:
        return GPU_REGISTRY[name] if name in GPU_REGISTRY else GPU_REGISTRY[name.upper()]
    except KeyError:
        raise KeyError(f"unknown GPU {name!r}; known: A100, L40S") from None


# ----------------------------------------------------------------------
# GPU-to-GPU interconnects (tensor-parallel communication model)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InterconnectSpec:
    """Bandwidth/latency model of one GPU-to-GPU link.

    Attributes
    ----------
    bandwidth_gbps:
        Sustained per-GPU, per-direction bandwidth in GB/s.  A ring
        all-reduce is bandwidth-bound on this number: every GPU sends and
        receives ``2 (tp-1)/tp`` of the payload over its link.
    latency_us:
        Per-message latency in microseconds (link traversal plus kernel
        launch and synchronisation overhead); a ``tp``-GPU ring all-reduce
        pays it ``2 (tp - 1)`` times.
    """

    name: str
    bandwidth_gbps: float
    latency_us: float

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_gbps * 1e9

    @property
    def latency_s(self) -> float:
        return self.latency_us * 1e-6

    def transfer_latency(self, payload_bytes: float) -> float:
        """Point-to-point transfer time for ``payload_bytes`` over this link.

        One bandwidth term plus one message latency — the cost model for
        bulk KV-state movement between replicas (disaggregated
        prefill→decode handoffs), as opposed to the collective cost below.
        """
        return payload_bytes / self.bandwidth_bytes_per_s + self.latency_s

    def allreduce_latency(self, payload_bytes: float, world_size: int) -> float:
        """Ring all-reduce time for ``payload_bytes`` across ``world_size`` GPUs.

        The classic cost model: each GPU moves ``2 (n-1)/n`` of the payload
        over its link in ``2 (n-1)`` latency-bound steps.  A single GPU
        communicates nothing.
        """
        if world_size <= 1:
            return 0.0
        steps = 2 * (world_size - 1)
        volume = (steps / world_size) * payload_bytes
        return volume / self.bandwidth_bytes_per_s + steps * self.latency_s


#: NVLink 3 (A100 SXM): 600 GB/s bidirectional => 300 GB/s per direction.
NVLINK = InterconnectSpec(name="nvlink", bandwidth_gbps=300.0, latency_us=3.0)

#: PCIe Gen4 x16 (L40S boards have no NVLink): 32 GB/s per direction and a
#: noticeably higher per-message cost through host bounce buffers.
PCIE_GEN4 = InterconnectSpec(name="pcie-gen4", bandwidth_gbps=32.0, latency_us=10.0)

INTERCONNECT_REGISTRY = {"nvlink": NVLINK, "pcie-gen4": PCIE_GEN4, "pcie": PCIE_GEN4}


def get_interconnect(name: str) -> InterconnectSpec:
    """Look up an interconnect spec by name (case-insensitive)."""
    try:
        return INTERCONNECT_REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(INTERCONNECT_REGISTRY))
        raise KeyError(f"unknown interconnect {name!r}; known: {known}") from None
