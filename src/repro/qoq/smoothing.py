"""Block-output smoothing (Section 4.3.2).

SmoothQuant-style per-channel rescaling applied to the *output modules*
(attention output projection and FFN down projection): the intermediate
activation is divided by a per-channel factor ``λ`` while the weight columns
are multiplied by ``λ``, migrating quantization difficulty from activations to
weights.  The paper finds the best migration strength ``α`` for these modules
is near zero — i.e. ``λ`` should be driven almost entirely by the weight
statistics — which is the default here.
"""

from __future__ import annotations

import numpy as np

__all__ = ["compute_smoothing_scales"]

_EPS = 1e-5


def compute_smoothing_scales(
    act_absmax: np.ndarray,
    weight: np.ndarray,
    alpha: float = 0.1,
) -> np.ndarray:
    """Per-input-channel smoothing factors ``λ``.

    ``λ_j = act_absmax_j^α / weight_absmax_j^(1-α)`` (the SmoothQuant rule),
    where ``weight_absmax_j`` is the largest magnitude in column ``j`` of the
    layer's weight.  ``α`` close to 0 makes the factor weight-dominated, which
    is what QoQ uses for output modules.

    The scales are normalised to have geometric mean 1 so that the overall
    dynamic range of activations/weights is preserved.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    act_absmax = np.maximum(np.asarray(act_absmax, dtype=np.float64).reshape(-1), _EPS)
    weight = np.asarray(weight, dtype=np.float64)
    if weight.shape[1] != act_absmax.size:
        raise ValueError("weight columns must match act_absmax length")
    w_absmax = np.maximum(np.max(np.abs(weight), axis=0), _EPS)
    scales = act_absmax ** alpha / w_absmax ** (1.0 - alpha)
    scales = np.maximum(scales, _EPS)
    scales = scales / np.exp(np.mean(np.log(scales)))
    return scales
