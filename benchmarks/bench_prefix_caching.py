"""Benchmark for the prefix-sharing KV cache: TTFT/goodput win on chat
traffic, eviction behaviour under page pressure, and cache-locality routing.

``test_chat_prefix_caching`` is the headline acceptance run: on a multi-turn
chat workload (growing histories over a shared system prompt) prefix caching
must report nonzero saved-prefill tokens and hit rate, and cut mean TTFT
versus the identical engine without caching.  ``test_eviction_under_pressure``
squeezes the page budget until cached-but-unreferenced blocks are reclaimed,
and ``test_prefix_affinity_routing`` shows the cluster-level hit-rate gap
between load-blind round-robin and the prefix-affinity router.
"""

from repro.gpu import A100
from repro.model import get_config
from repro.serving import (
    ClusterEngine,
    SCHEDULING_PRESETS,
    SYSTEM_PRESETS,
    ServingEngine,
    make_chat_workload,
)


def _engine(max_seq_len=4096):
    return ServingEngine(get_config("llama-2-7b"), A100,
                         SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                         max_seq_len=max_seq_len)


def _chat_workload(seed=1):
    return make_chat_workload(num_sessions=8, turns_per_session=6,
                              system_prompt_len=512, user_len=64,
                              assistant_len=128, think_time_s=6.0, seed=seed)


def test_chat_prefix_caching(benchmark, serving_json):
    """Acceptance: nonzero hits and a mean-TTFT win on multi-turn chat."""
    engine = _engine()
    workload = _chat_workload()

    def run():
        return {preset: engine.serve(workload.copy_fresh(), max_num_seqs=8,
                                     scheduling=SCHEDULING_PRESETS[preset])
                for preset in ("chunked", "prefix", "prefix-aware")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    serving_json.record("chat_prefix_caching", results)
    print()
    for preset, result in results.items():
        m = result.metrics
        print(f"{preset:13s} {result.generation_throughput:7.1f} tok/s  "
              f"TTFT mean/p95 {m.ttft.mean * 1e3:7.1f}/{m.ttft.p95 * 1e3:8.1f} ms  "
              f"hit {result.cache_hit_rate * 100:5.1f}%  "
              f"saved {result.saved_prefill_tokens:6d} tok")
    base, cached = results["chunked"], results["prefix"]
    assert base.num_finished == cached.num_finished == len(workload)
    assert base.saved_prefill_tokens == 0
    assert cached.saved_prefill_tokens > 0
    assert cached.cache_hit_rate > 0.5
    assert cached.metrics.ttft.mean < base.metrics.ttft.mean
    assert cached.total_time_s < base.total_time_s


def test_eviction_under_pressure(benchmark, monkeypatch):
    """A tight page budget forces LRU eviction of unreferenced blocks while
    every request still completes."""
    engine = _engine()
    pages = 200 * engine.new_kv_manager().bytes_per_page()
    monkeypatch.setattr(engine, "kv_capacity_bytes", lambda: pages)
    workload = _chat_workload(seed=2)

    def run():
        return engine.serve(workload.copy_fresh(), max_num_seqs=6,
                            scheduling=SCHEDULING_PRESETS["prefix-preempt"])

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result.prefix_stats
    print(f"\nevicted {stats.evicted_pages} pages, "
          f"peak cached {stats.peak_cached_pages}, "
          f"hit {stats.hit_rate * 100:.1f}%, "
          f"KV peak {result.kv_utilization_peak * 100:.1f}%")
    assert result.num_finished == len(workload)
    assert stats.evicted_pages > 0
    assert result.kv_utilization_peak > 0.5


def test_prefix_affinity_routing(benchmark):
    """Cache-locality routing raises the cluster hit rate over round-robin."""
    cluster = ClusterEngine(get_config("llama-2-7b"), A100,
                            SYSTEM_PRESETS["qserve-w4a8kv4-chn"],
                            num_replicas=4, max_seq_len=4096)
    workload = _chat_workload(seed=3)

    def run():
        return {router: cluster.serve(workload.copy_fresh(), router=router,
                                      max_num_seqs=8,
                                      scheduling=SCHEDULING_PRESETS["prefix"])
                for router in ("round-robin", "least-outstanding",
                               "prefix-affinity")}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for router, result in results.items():
        print(f"{router:18s} hit {result.cache_hit_rate * 100:5.1f}%  "
              f"saved {result.saved_prefill_tokens:6d} tok  "
              f"TTFT p95 {result.metrics.ttft.p95 * 1e3:7.1f} ms  "
              f"split {result.requests_per_replica}")
    assert results["prefix-affinity"].cache_hit_rate > \
        results["round-robin"].cache_hit_rate
    assert all(r.num_finished == len(workload) for r in results.values())
