"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper table/figure via the corresponding
module in :mod:`repro.experiments`.  Accuracy benchmarks default to the
``tiny`` scale so the whole suite completes in minutes; set
``QSERVE_REPRO_SCALE=small`` to reproduce the numbers recorded in
EXPERIMENTS.md.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


@pytest.fixture(scope="session")
def accuracy_scale() -> str:
    return os.environ.get("QSERVE_REPRO_SCALE", "tiny")


@pytest.fixture(scope="session")
def accuracy_setup(accuracy_scale):
    from repro.experiments.accuracy_common import build_setup
    return build_setup(accuracy_scale, seed=0)
