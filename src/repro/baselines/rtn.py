"""Round-to-nearest (RTN) quantization at arbitrary precision.

RTN is the no-calibration baseline of Table 2: weights are quantized directly
with per-channel or per-group scales, activations per-token, the KV cache per
head — no rotation, smoothing, clipping or reordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.model.quantized import ActQuantSpec, FakeQuantLinear, W4A8Linear, W8A8Linear
from repro.model.transformer import ForwardConfig, TransformerModel
from repro.quant.dtypes import INT4, INT8
from repro.quant.kv_quant import KVQuantConfig
from repro.quant.quantizer import Granularity, fake_quantize

__all__ = ["quantize_rtn"]


def _rtn_weight(weight: np.ndarray, bits: int, group_size: Optional[int]) -> np.ndarray:
    fmt = INT8 if bits == 8 else INT4
    granularity = Granularity.PER_GROUP if group_size else Granularity.PER_CHANNEL
    symmetric = bits == 8
    return fake_quantize(weight, fmt, granularity=granularity, symmetric=symmetric,
                         group_size=group_size)


def quantize_rtn(
    model: TransformerModel,
    weight_bits: int = 4,
    act_bits: int = 8,
    kv_bits: int = 4,
    group_size: Optional[int] = None,
    integer_path: bool = True,
) -> tuple[TransformerModel, ForwardConfig]:
    """Quantize ``model`` with plain round-to-nearest.

    ``integer_path=True`` uses the integer-arithmetic W4A8/W8A8 linears when
    the precision matches; otherwise simulated quantization is used.
    Returns ``(quantized_model, forward_config)``.
    """
    if weight_bits not in (4, 8, 16):
        raise ValueError("weight_bits must be 4, 8 or 16")
    if act_bits not in (4, 8, 16):
        raise ValueError("act_bits must be 4, 8 or 16")
    work = model.clone()
    fwd = ForwardConfig(kv_quant=KVQuantConfig(bits=kv_bits, per_head=True))

    for name, layer in work.named_linears().items():
        weight = layer.weight
        in_features = weight.shape[1]
        g = group_size if (group_size and in_features % group_size == 0) else None
        if weight_bits == 16 and act_bits == 16:
            continue
        if integer_path and weight_bits == 4 and act_bits == 8:
            new_layer = W4A8Linear(weight, name=name, group_size=g)
        elif integer_path and weight_bits == 8 and act_bits == 8:
            new_layer = W8A8Linear(weight, name=name)
        else:
            w_q = weight if weight_bits == 16 else _rtn_weight(weight, weight_bits, g)
            act_group = g if act_bits == 4 else None
            new_layer = FakeQuantLinear(
                w_q, name=name,
                act_spec=ActQuantSpec(bits=act_bits, group_size=act_group))
        work.set_linear(name, new_layer)
    return work, fwd
