"""Tests for the experiment harnesses (one per paper table/figure)."""

import numpy as np
import pytest

from repro.experiments import ExperimentReport, format_table
from repro.experiments import (
    fig2_motivation,
    fig3_roofline,
    fig16_ablation,
    fig17_same_batch,
    fig18_dequant_overhead,
    table1_kv4_attention,
    table2_perplexity,
    table4_throughput,
)
from repro.experiments.accuracy_common import build_setup


def test_report_helpers():
    report = ExperimentReport("x", "demo", ["a", "b"])
    report.add_row(1, 2.0)
    assert report.column("a") == [1]
    assert report.row_by("a", 1) == [1, 2.0]
    assert report.row_by("a", 99) is None
    with pytest.raises(ValueError):
        report.add_row(1)
    text = report.to_text()
    assert "demo" in text and "2.00" in text
    assert "a" in format_table(["a"], [[1.5]])


def test_fig2a_attention_share_grows_with_batch():
    report = fig2_motivation.run_latency_breakdown(batches=(1, 16, 64))
    shares = report.column("Attention %")
    assert shares[0] < shares[-1]
    assert shares[-1] > 50.0


def test_fig2b_w4a4_systems_do_not_beat_trt():
    report = fig2_motivation.run_system_throughput()
    values = dict(zip(report.column("System"), report.column("Throughput (tok/s)")))
    assert values["atom-w4a4"] < values["trt-w8a8"]
    assert values["quarot-w4a4"] < values["trt-w8a8"]


def test_fig3_crossover_and_dominance():
    report = fig3_roofline.run()
    assert report.extra["crossover"] == pytest.approx(78, abs=3)
    w4a8 = report.column("INT4xINT8 (W4A8)")
    w8a8 = report.column("INT8xINT8 (W8A8)")
    w4a16 = report.column("INT4xFP16 (W4A16)")
    assert all(a >= b - 1e-9 and a >= c - 1e-9
               for a, b, c in zip(w4a8, w8a8, w4a16))


def test_table1_report_shape():
    report = table1_kv4_attention.run(seq_lens=(256, 1024))
    assert len(report.rows) == 2
    naive_speedups = report.column("naive speedup")
    qserve_speedups = report.column("QServe speedup")
    assert all(s < 1.0 for s in naive_speedups)
    assert all(s > 1.2 for s in qserve_speedups)
    breakdown = table1_kv4_attention.run_breakdown()
    latencies = breakdown.column("Latency (ms)")
    assert latencies == sorted(latencies, reverse=True)


def test_table4_and_table6_speedups():
    report = table4_throughput.run(models=("llama-3-8b", "llama-2-70b"),
                                   include_w4a4=False)
    speedups = report.column("Speedup vs best TRT")
    assert all(s > 1.0 for s in speedups)
    t6 = table4_throughput.run_table6(models=("llama-2-7b",))
    assert t6.rows[0][-1] > 1.0


def test_fig15_geomean_speedups_exceed_one():
    report = table4_throughput.run_fig15_speedups(models=("llama-3-8b", "llama-2-13b"))
    geo = report.extra["geomean"]
    assert geo["A100"] > 1.0
    assert geo["L40S"] > geo["A100"] * 0.9  # L40S advantage is at least comparable


def test_fig17_qserve_fastest_at_same_batch():
    report = fig17_same_batch.run(batches=(8,), normalize=True)
    row = report.rows[0]
    header_idx = {h: i for i, h in enumerate(report.headers)}
    qserve = row[header_idx["qserve-w4a8kv4-chn"]]
    others = [row[header_idx[s]] for s in ("trt-fp16", "trt-w4a16", "trt-w8a8",
                                           "atom-w4a4", "quarot-w4a4")]
    assert qserve >= max(others)


def test_fig18_overhead_ordering():
    report = fig18_dequant_overhead.run(batches=(8, 64))
    for row in report.rows:
        _, w8a8, w4a16, atom, qserve = row
        assert w8a8 == 0.0
        assert atom >= max(w4a16, qserve)
        assert qserve <= w4a16 + 1e-9
    comp = fig18_dequant_overhead.run_mainloop_composition()
    assert len(comp.rows) == 6


@pytest.mark.slow
def test_accuracy_experiments_tiny_scale(accuracy_setup):
    """End-to-end smoke test of the accuracy experiments at tiny scale."""
    report = table2_perplexity.run(setup=accuracy_setup)
    ppl = dict(zip((f"{r[0]}/{r[1]}" for r in report.rows),
                   report.column("Perplexity")))
    fp16 = ppl["FP16/-"]
    assert abs(ppl["W8A8/SmoothQuant"] - fp16) / fp16 < 0.05
    # Every 4-bit weight setting degrades relative to FP16 but stays finite.
    for key, value in ppl.items():
        assert np.isfinite(value)
        if key.startswith("W4A4"):
            assert value > fp16

    ablation = fig16_ablation.run(setup=accuracy_setup)
    assert len(ablation.rows) == 8
    throughputs = ablation.column("Throughput (tok/s)")
    # 4-bit weights and 4-bit KV each increase serving throughput.
    assert throughputs[1] > throughputs[0]
    assert throughputs[4] > throughputs[3]
    kv_mem = ablation.column("KV mem/token (KB)")
    assert kv_mem[4] < kv_mem[3] / 1.9


def test_build_setup_rejects_unknown_scale():
    with pytest.raises(KeyError):
        build_setup("huge")
