"""Decode-attention kernel latency model (Table 1, Section 5.3).

The decoding-stage attention kernel is a fused batched GEMV executed on CUDA
cores.  Its memory traffic is dominated by reading the KV cache; its compute
is the QK/SV dot products plus — for quantized caches — the per-element
dequantization.  The paper's observation is that on the A100 (whose FP32 CUDA
cores peak at only ~19.5 TFLOPS, a roofline turning point of ~9.8 ops/byte)
the 5 ALU ops a *naive* KV4 dequantization spends per element push the fused
kernel into the compute-bound region, so halving the memory traffic makes it
*slower* than KV8.  QServe gets back to memory-bound by (a) computing in FP16
instead of FP32 (doubling the roof), (b) using the 2-op bit-trick
dequantization of Kim et al., and (c) simplifying control flow / prefetching
scaling factors, modelled as a fixed per-element overhead that drops from 2
ops to 0.5 ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.gpu.specs import GPUSpec

__all__ = [
    "AttentionKernelConfig",
    "AttentionLatency",
    "attention_decode_latency",
    "KV_KERNELS",
    "KERNEL_LAUNCH_OVERHEAD_S",
]


@dataclass(frozen=True)
class AttentionKernelConfig:
    """One decode-attention kernel implementation.

    Attributes
    ----------
    kv_bits:
        KV-cache storage precision.
    dequant_ops_per_element:
        CUDA-core ops spent dequantizing each KV element (0 for FP16/INT8
        caches that convert with a single instruction folded into the MAC).
    control_ops_per_element:
        Additional per-element overhead for address calculation / control
        flow / scale handling.
    compute_dtype:
        CUDA-core dtype of the QK/SV arithmetic (FP32 for the TRT-LLM-style
        baseline kernels, FP16 for QServe's optimised kernel).
    dynamic_params:
        Whether per-head dynamic scales/zero points are stored with the cache
        (adds a small amount of memory traffic).
    """

    name: str
    kv_bits: int
    dequant_ops_per_element: float
    control_ops_per_element: float
    compute_dtype: str
    dynamic_params: bool = False


#: Fixed per-kernel-launch overhead (softmax epilogue, cross-warp reductions,
#: launch latency); calibrated so the KV8 baseline matches Table 1 end to end.
KERNEL_LAUNCH_OVERHEAD_S = 30e-6

#: Kernel variants compared in Table 1 and the Section 6.4 breakdown.  The
#: control-op constants are calibrated so the A100 column of Table 1 is
#: reproduced: the naive dynamic-per-head KV4 kernel (un-prefetched scales,
#: branchy control flow) is *slower* than TRT-LLM's static KV8 kernel, the
#: bit-trick dequantization recovers most of it, and the full QServe kernel
#: (FP16 arithmetic + simplified control + prefetched scales) is ~1.3-1.5x
#: faster than KV8.
KV_KERNELS: Dict[str, AttentionKernelConfig] = {
    "kv16": AttentionKernelConfig(
        name="kv16", kv_bits=16, dequant_ops_per_element=0.0,
        control_ops_per_element=1.0, compute_dtype="fp32"),
    "kv8-trt": AttentionKernelConfig(
        name="kv8-trt", kv_bits=8, dequant_ops_per_element=1.0,
        control_ops_per_element=1.0, compute_dtype="fp32"),
    "kv4-naive": AttentionKernelConfig(
        name="kv4-naive", kv_bits=4, dequant_ops_per_element=5.0,
        control_ops_per_element=7.0, compute_dtype="fp32", dynamic_params=True),
    "kv4-bittrick": AttentionKernelConfig(
        name="kv4-bittrick", kv_bits=4, dequant_ops_per_element=2.0,
        control_ops_per_element=7.0, compute_dtype="fp32", dynamic_params=True),
    "kv4-simplectrl": AttentionKernelConfig(
        name="kv4-simplectrl", kv_bits=4, dequant_ops_per_element=2.0,
        control_ops_per_element=3.0, compute_dtype="fp32", dynamic_params=True),
    "kv4-qserve": AttentionKernelConfig(
        name="kv4-qserve", kv_bits=4, dequant_ops_per_element=2.0,
        control_ops_per_element=1.0, compute_dtype="fp16", dynamic_params=True),
}


@dataclass
class AttentionLatency:
    """Latency breakdown of one decode-attention call (seconds)."""

    total: float
    memory: float
    compute: float

    @property
    def is_compute_bound(self) -> bool:
        return self.compute > self.memory


def attention_decode_latency(
    spec: GPUSpec,
    kernel: AttentionKernelConfig,
    batch: int,
    seq_len: int,
    num_heads: int,
    num_kv_heads: int,
    head_dim: int,
) -> AttentionLatency:
    """Latency of one layer's decode attention over a ``seq_len`` KV history.

    ``batch`` sequences each attend over ``seq_len`` cached tokens with
    ``num_heads`` query heads sharing ``num_kv_heads`` KV heads of width
    ``head_dim``.
    """
    if batch <= 0 or seq_len <= 0:
        raise ValueError("batch and seq_len must be positive")
    kv_elements = 2.0 * batch * seq_len * num_kv_heads * head_dim  # K and V

    # Memory traffic: quantized KV payload plus (for dynamic quantization) one
    # FP16 scale and zero point per head per token per tensor.
    kv_bytes = kv_elements * kernel.kv_bits / 8.0
    if kernel.dynamic_params:
        kv_bytes += 2.0 * batch * seq_len * num_kv_heads * 2 * 2
    mem_time = kv_bytes / (spec.effective_bandwidth_gbps * 1e9)

    # Compute: every query head runs a MAC against every cached KV element of
    # its KV head (QK^T and SV), i.e. the KV elements are each used
    # `gqa_ratio` times, plus per-element dequantization and control overhead.
    gqa_ratio = num_heads / num_kv_heads
    mac_ops = 2.0 * kv_elements * gqa_ratio
    overhead_ops = (kernel.dequant_ops_per_element
                    + kernel.control_ops_per_element) * kv_elements
    cuda_peak = spec.cuda_core_tops(kernel.compute_dtype) * 1e12
    compute_time = (mac_ops + overhead_ops) / (cuda_peak * spec.compute_efficiency)

    total = max(mem_time, compute_time) + KERNEL_LAUNCH_OVERHEAD_S
    return AttentionLatency(total=total, memory=mem_time, compute=compute_time)
