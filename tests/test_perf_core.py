"""Regression tests for the vectorized/memoized simulator core.

The perf refactor's contract is *bitwise identity*: memoized cost models,
early-exit admission, O(1) KV accounting and vectorized metrics aggregation
must leave every ServingResult exactly as the naive code produced it.  These
tests pin that down by running identical workloads with the cost cache on and
off and comparing every float with ``float.hex()`` (no tolerance), and they
lock in the perf properties themselves: cache hit rates on steady decode
loops, admission-scan work staying far below the naive rescan-everything
count, and the sorted-waiting-queue invariant the fast paths rely on.
"""

import os

import pytest

from repro.gpu import A100
from repro.model import get_config
from repro.serving import (
    ContinuousBatchingScheduler,
    CostModelCache,
    Request,
    SCHEDULING_PRESETS,
    SYSTEM_PRESETS,
    ServingEngine,
    SpeculativeConfig,
    cache_enabled_default,
    make_chat_workload,
    make_lognormal_workload,
    make_uniform_workload,
)

LLAMA7B = get_config("llama-2-7b")
QSERVE = SYSTEM_PRESETS["qserve-w4a8kv4-chn"]


def _engine(**kwargs) -> ServingEngine:
    return ServingEngine(LLAMA7B, A100, QSERVE, max_seq_len=4096, **kwargs)


def _result_fingerprint(result) -> dict:
    """Exact (hex-float) digest of a ServingResult, per-request streams included."""
    fp = {
        "total_time_s": result.total_time_s.hex(),
        "busy_time_s": result.busy_time_s.hex(),
        "generated": result.generated_tokens,
        "iterations": result.num_iterations,
        "finished": result.num_finished,
        "preemptions": result.num_preemptions,
        "recomputed": result.recomputed_prefill_tokens,
        "peak_batch": result.peak_batch,
    }
    for m in result.metrics.requests:
        fp[m.request_id] = (m.arrival_time.hex(), m.first_token_time.hex(),
                            m.finish_time.hex(), m.preemptions)
    return fp


# ----------------------------------------------------------------------
# Memoization: bitwise identity cache on vs. off
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheduling,workload", [
    ("legacy", lambda: make_uniform_workload(48, prompt_len=512,
                                             output_len=64)),
    ("chunked", lambda: make_lognormal_workload(80, arrival_rate=40.0,
                                                seed=3)),
    ("chunked-preempt", lambda: make_lognormal_workload(80, arrival_rate=40.0,
                                                        seed=3)),
    ("prefix-aware", lambda: make_chat_workload(num_sessions=6,
                                                turns_per_session=4,
                                                session_rate=0.5, seed=5)),
])
def test_cost_cache_bitwise_identical(scheduling, workload):
    """Cache on/off produce byte-for-byte identical serving results."""
    results = {}
    for enabled in (True, False):
        r = _engine(cost_cache=enabled).serve(
            workload(), max_num_seqs=24,
            scheduling=SCHEDULING_PRESETS[scheduling])
        results[enabled] = _result_fingerprint(r)
    assert results[True] == results[False]


def test_cost_cache_bitwise_identical_speculative():
    """Speculative decoding (draft engine included) is cache-invariant."""
    spec = SpeculativeConfig(draft_model=get_config("llama-160m"),
                             profile="low-entropy", lookahead=4,
                             adaptive=True, seed=11)
    wl = make_lognormal_workload(60, arrival_rate=30.0, seed=7)
    results = {}
    for enabled in (True, False):
        r = _engine(cost_cache=enabled).serve(
            wl.copy_fresh(), max_num_seqs=16,
            scheduling=SCHEDULING_PRESETS["chunked-preempt"],
            speculative=spec)
        results[enabled] = _result_fingerprint(r)
    assert results[True] == results[False]


def test_cost_cache_kernel_latencies_identical():
    """Every kernel-level entry point returns identical values on hit and miss."""
    cached, uncached = _engine(cost_cache=True), _engine(cost_cache=False)
    for batch, context in [(1, 128), (16, 512), (48, 1024), (16, 512)]:
        for name in ("gemm", "attention", "other", "comm"):
            a = getattr(cached.decode_step(batch, context), name)
            b = getattr(uncached.decode_step(batch, context), name)
            assert a.hex() == b.hex(), (name, batch, context)
        a = cached.mixed_step([(256, 0), (128, 256)], batch, context)
        b = uncached.mixed_step([(256, 0), (128, 256)], batch, context)
        assert a.total.hex() == b.total.hex()
    assert cached.cost_cache.hits > 0
    assert len(uncached.cost_cache.store) == 0


# ----------------------------------------------------------------------
# Memoization: hit rates on steady serving loops
# ----------------------------------------------------------------------
def test_cost_cache_hit_rate_steady_decode():
    """A steady decode loop re-prices the same shapes almost every step."""
    engine = _engine(cost_cache=True)
    engine.serve(make_uniform_workload(48, prompt_len=512, output_len=128),
                 max_num_seqs=24)
    cache = engine.cost_cache
    assert cache.lookups > 500
    assert cache.hit_rate > 0.8
    # Distinct shapes stay small next to the lookup volume.
    assert len(cache.store) < cache.lookups / 4


def test_cost_cache_hit_rate_chunked():
    engine = _engine(cost_cache=True)
    engine.serve(make_lognormal_workload(120, arrival_rate=40.0, seed=0),
                 max_num_seqs=32,
                 scheduling=SCHEDULING_PRESETS["chunked-preempt"])
    assert engine.cost_cache.hit_rate > 0.5


def test_cost_cache_disabled_counts_nothing():
    engine = _engine(cost_cache=False)
    engine.serve(make_uniform_workload(8, prompt_len=128, output_len=16),
                 max_num_seqs=8)
    cache = engine.cost_cache
    assert cache.lookups == 0 and len(cache.store) == 0


def test_cost_cache_env_default(monkeypatch):
    """REPRO_COST_CACHE=0 disables caching for engines built without override."""
    monkeypatch.setenv("REPRO_COST_CACHE", "0")
    assert not cache_enabled_default()
    assert not _engine().cost_cache.enabled
    monkeypatch.setenv("REPRO_COST_CACHE", "1")
    assert cache_enabled_default()
    assert _engine().cost_cache.enabled
    # Explicit constructor choice always wins over the environment.
    monkeypatch.setenv("REPRO_COST_CACHE", "0")
    assert _engine(cost_cache=True).cost_cache.enabled


def test_cost_cache_clear():
    cache = CostModelCache()
    cache.store[("gemm", 8)] = 1.0
    cache.hits = 3
    cache.misses = 1
    assert len(cache) == 1 and cache.hit_rate == 0.75
    cache.clear()
    assert len(cache) == 0 and cache.lookups == 0


# ----------------------------------------------------------------------
# Admission early-exit: scan work, not just results
# ----------------------------------------------------------------------
def test_admission_scan_work_bounded():
    """A saturated queue resolves most steps via fast paths, not rescans.

    200 requests all arrive at t=0 against a 16-seat cap: the naive scheduler
    re-examined every waiting request on every admit() call.  The early-exit
    scheduler must resolve cap-blocked steps in O(1) and stop each real scan
    at the cap, keeping examined-requests far below the naive count.
    """
    engine = _engine()
    stepper_result = engine.serve(
        make_lognormal_workload(200, seed=0), max_num_seqs=16,
        scheduling=SCHEDULING_PRESETS["chunked-preempt"])
    assert stepper_result.num_finished == 200
    # Re-run through the stepper to read the scheduler's counters.
    from repro.serving import EngineStepper
    stepper = EngineStepper(engine,
                            scheduling=SCHEDULING_PRESETS["chunked-preempt"],
                            max_num_seqs=16)
    stepper.submit(list(make_lognormal_workload(200, seed=0).requests))
    stepper.run()
    scheduler = stepper.scheduler
    naive_work = stepper.iterations * 200  # rescan-everything upper bound
    assert scheduler.admission_fast_skips > 0
    assert scheduler.admission_scanned_requests < naive_work / 10
    # The scan must still have admitted everything.
    assert len(scheduler.finished) == 200


def test_admission_fast_paths_counted():
    """Each provable no-op admission resolves without touching the queue."""
    kv = ContinuousBatchingScheduler(
        kv_manager=_engine().new_kv_manager(), max_num_seqs=2)
    reqs = [Request(request_id=i, prompt_len=64, output_len=8,
                    arrival_time=float(i)) for i in range(4)]
    kv.submit(reqs)
    # Nothing has arrived at t=-1: fast skip, queue untouched.
    before = kv.admission_scanned_requests
    assert kv.admit(-1.0) == []
    assert kv.admission_fast_skips == 1
    assert kv.admission_scanned_requests == before
    # Two admits fill the cap...
    admitted = kv.admit(10.0)
    assert len(admitted) == 2
    # ...after which admission is a constant-time skip.
    assert kv.admit(10.0) == []
    assert kv.admission_fast_skips == 2
    assert [r.request_id for r in kv.waiting] == [2, 3]


def test_waiting_queue_stays_sorted():
    """submit/admit/preempt all preserve the availability-sorted invariant."""
    engine = _engine()
    from repro.serving import EngineStepper
    stepper = EngineStepper(engine,
                            scheduling=SCHEDULING_PRESETS["chunked-preempt"],
                            max_num_seqs=8)
    wl = make_lognormal_workload(60, arrival_rate=50.0, seed=2)
    # Incremental one-at-a-time submission exercises the insort path.
    for request in wl.requests:
        stepper.submit(request)
        stepper.step()
        keys = [(r.available_time, r.request_id)
                for r in stepper.scheduler.waiting]
        assert keys == sorted(keys)
    stepper.run()
    assert stepper.scheduler.all_done
